//! Running a workload against untraced / manually traced / automatically
//! traced / distributed front-ends.
//!
//! Workloads issue tasks through [`tasksim::issuer::TaskIssuer`] — the one
//! object-safe contract every front-end implements — so the same
//! application code runs unchanged against a bare runtime (untraced, or
//! manually annotated), an [`apophenia::AutoTracer`], or a distributed
//! deployment. The front-end is selected by *data*: [`Mode`] (a re-export
//! of [`apophenia::Tracing`]) feeds [`apophenia::Session`], which builds
//! the issuer. This mirrors the paper's experimental configurations
//! (`untraced`, `manual`, `auto`) plus the §5.1 distributed deployment.

use apophenia::Session;
use tasksim::exec::{LogRetention, OpLog, SimReport};
use tasksim::issuer::TaskIssuer;
use tasksim::runtime::RuntimeError;
use tasksim::snapshot::CheckpointMeta;
use tasksim::stats::RuntimeStats;

/// Which tracing configuration a run uses — [`apophenia::Tracing`] under
/// its experiment-harness name.
pub type Mode = apophenia::Tracing;

/// Problem-size class used in the weak-scaling sweeps ("-s/-m/-l").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemSize {
    /// Small: runtime overhead most exposed.
    Small,
    /// Medium.
    Medium,
    /// Large: easiest to hide overhead.
    Large,
}

impl ProblemSize {
    /// All sizes, in sweep order.
    pub const ALL: [ProblemSize; 3] = [ProblemSize::Small, ProblemSize::Medium, ProblemSize::Large];

    /// The graph-label suffix the paper uses.
    pub fn suffix(self) -> &'static str {
        match self {
            ProblemSize::Small => "s",
            ProblemSize::Medium => "m",
            ProblemSize::Large => "l",
        }
    }

    /// A per-size multiplier applied to base task granularity.
    pub fn granularity_factor(self) -> f64 {
        match self {
            ProblemSize::Small => 1.0,
            ProblemSize::Medium => 2.0,
            ProblemSize::Large => 4.0,
        }
    }
}

/// Machine + problem parameters for one run.
#[derive(Debug, Clone, Copy)]
pub struct AppParams {
    /// Machine nodes.
    pub nodes: u32,
    /// GPUs per node (4 on Perlmutter, 8 on Eos).
    pub gpus_per_node: u32,
    /// Problem size class.
    pub size: ProblemSize,
    /// Application iterations to run.
    pub iters: usize,
}

impl AppParams {
    /// Total GPUs.
    pub fn total_gpus(&self) -> u32 {
        self.nodes * self.gpus_per_node
    }

    /// A Perlmutter-like machine (4 A100s per node) with `gpus` total.
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is not a multiple of 4 (or less than 4).
    pub fn perlmutter(gpus: u32, size: ProblemSize, iters: usize) -> Self {
        assert!(gpus >= 4 && gpus.is_multiple_of(4), "Perlmutter nodes have 4 GPUs");
        Self { nodes: gpus / 4, gpus_per_node: 4, size, iters }
    }

    /// An Eos-like machine (8 H100s per node) with `gpus` total; GPU
    /// counts below 8 run on a partial node.
    pub fn eos(gpus: u32, size: ProblemSize, iters: usize) -> Self {
        if gpus < 8 {
            Self { nodes: 1, gpus_per_node: gpus.max(1), size, iters }
        } else {
            assert!(gpus.is_multiple_of(8), "Eos nodes have 8 GPUs");
            Self { nodes: gpus / 8, gpus_per_node: 8, size, iters }
        }
    }
}

/// A workload: issues a task stream shaped like one of the paper's
/// applications.
pub trait Workload {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Whether a manually traced variant exists (S3D, HTR, FlexFlow do;
    /// the cuPyNumeric apps do not — §6.1).
    fn has_manual(&self) -> bool;

    /// Issues the full run (setup + `params.iters` iterations) through
    /// `issuer`. `manual` selects the hand-annotated variant.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    fn run(
        &self,
        issuer: &mut dyn TaskIssuer,
        params: &AppParams,
        manual: bool,
    ) -> Result<(), RuntimeError>;
}

/// Everything a single run produces.
#[derive(Debug)]
pub struct RunOutcome {
    /// The machine-simulation report — streamed incrementally under
    /// [`LogRetention::Drain`], batch-computed under
    /// [`LogRetention::Full`]; bit-identical either way.
    pub report: SimReport,
    /// The raw operation log, present only under [`LogRetention::Full`].
    pub log: Option<OpLog>,
    /// Runtime counters.
    pub stats: RuntimeStats,
    /// Warmup iterations until replay steady state (single-node auto only;
    /// distributed front-ends do not measure warmup and report `None`).
    pub warmup_iterations: Option<u64>,
    /// Figure 10 traced-fraction samples (single-node auto only; empty for
    /// distributed front-ends).
    pub traced_samples: Vec<(u64, f64)>,
}

impl RunOutcome {
    /// The stored operation log.
    ///
    /// # Panics
    ///
    /// Panics if the run used [`LogRetention::Drain`].
    pub fn log(&self) -> &OpLog {
        self.log.as_ref().expect("raw OpLog requires LogRetention::Full")
    }
}

/// Runs `workload` under `mode` with full log retention and returns the
/// outcome (report + raw log). The front-end is built through [`Session`];
/// the workload sees only `dyn TaskIssuer`.
///
/// # Errors
///
/// Propagates runtime errors — e.g. manual-mode sequence mismatches on
/// workloads whose streams are not manually traceable.
///
/// # Panics
///
/// Panics if `mode` is [`Mode::Manual`] but the workload has no manual
/// variant.
pub fn run_workload(
    workload: &dyn Workload,
    params: &AppParams,
    mode: &Mode,
) -> Result<RunOutcome, RuntimeError> {
    run_workload_with(workload, params, mode, LogRetention::Full)
}

/// [`run_workload`] with an explicit retention policy:
/// [`LogRetention::Drain`] streams the run through the incremental
/// simulator (no log materialized — resident ops stay O(window + trace
/// length), which is what makes production-length streams feasible).
///
/// # Errors
///
/// See [`run_workload`].
///
/// # Panics
///
/// See [`run_workload`].
pub fn run_workload_with(
    workload: &dyn Workload,
    params: &AppParams,
    mode: &Mode,
    retention: LogRetention,
) -> Result<RunOutcome, RuntimeError> {
    let manual = mode.is_manual();
    if manual {
        assert!(workload.has_manual(), "{} has no manual variant", workload.name());
    }
    let mut issuer = Session::builder()
        .nodes(params.nodes)
        .gpus_per_node(params.gpus_per_node)
        .tracing(mode.clone())
        .log_retention(retention)
        .build();
    workload.run(issuer.as_mut(), params, manual)?;
    issuer.flush()?;
    let warmup_iterations = issuer.warmup_iterations();
    let traced_samples = issuer.traced_samples();
    let artifacts = issuer.finish()?;
    Ok(RunOutcome {
        report: artifacts.report,
        log: artifacts.log,
        stats: artifacts.stats,
        warmup_iterations,
        traced_samples,
    })
}

/// Checkpoints a running session into a byte buffer — the driver-level
/// convenience over [`TaskIssuer::checkpoint`] for callers that park the
/// snapshot in memory or hand it to their own storage layer. The session
/// keeps running normally afterwards.
///
/// # Errors
///
/// Propagates checkpoint (I/O/serialization) errors.
pub fn checkpoint_session(
    issuer: &mut dyn TaskIssuer,
) -> Result<(CheckpointMeta, Vec<u8>), RuntimeError> {
    let mut bytes = Vec::new();
    let meta = issuer.checkpoint(&mut bytes)?;
    Ok((meta, bytes))
}

/// Restores a session from bytes written by [`checkpoint_session`] (or
/// any [`TaskIssuer::checkpoint`] writer). The restored issuer continues
/// bit-identically to the uninterrupted run.
///
/// # Errors
///
/// Typed snapshot errors on corrupt or truncated input.
pub fn resume_session(bytes: &[u8]) -> Result<Box<dyn TaskIssuer>, RuntimeError> {
    Session::resume_from(&mut &*bytes)
}

/// Convenience: run and return steady-state throughput (iterations/sec)
/// after `warmup` iterations. Uses [`LogRetention::Drain`] — throughput
/// needs only the report, so nothing is materialized.
///
/// # Errors
///
/// See [`run_workload`].
pub fn measure_throughput(
    workload: &dyn Workload,
    params: &AppParams,
    mode: &Mode,
    warmup: usize,
) -> Result<f64, RuntimeError> {
    let outcome = run_workload_with(workload, params, mode, LogRetention::Drain)?;
    Ok(outcome.report.steady_throughput(warmup))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apophenia::Config;
    use tasksim::cost::Micros;
    use tasksim::ids::{TaskKindId, TraceId};
    use tasksim::task::TaskDesc;

    /// A trivial two-task loop used to exercise the harness.
    struct Ping;

    impl Workload for Ping {
        fn name(&self) -> &'static str {
            "ping"
        }

        fn has_manual(&self) -> bool {
            true
        }

        fn run(
            &self,
            d: &mut dyn TaskIssuer,
            p: &AppParams,
            manual: bool,
        ) -> Result<(), RuntimeError> {
            let a = d.create_region(1);
            let b = d.create_region(1);
            for _ in 0..p.iters {
                if manual {
                    d.begin_trace(TraceId(0))?;
                }
                d.execute_task(
                    TaskDesc::new(TaskKindId(0)).reads(a).writes(b).gpu_time(Micros(80.0)),
                )?;
                d.execute_task(
                    TaskDesc::new(TaskKindId(1)).reads(b).writes(a).gpu_time(Micros(80.0)),
                )?;
                if manual {
                    d.end_trace(TraceId(0))?;
                }
                d.mark_iteration();
            }
            Ok(())
        }
    }

    fn params() -> AppParams {
        AppParams { nodes: 1, gpus_per_node: 4, size: ProblemSize::Small, iters: 300 }
    }

    #[test]
    fn all_modes_run_through_one_harness() {
        let p = params();
        let auto_cfg = Config::standard().with_min_trace_length(2).with_multi_scale_factor(16);
        let modes = [
            Mode::Untraced,
            Mode::Manual,
            Mode::Auto(auto_cfg.clone()),
            Mode::Distributed {
                config: auto_cfg,
                delay: apophenia::DelayModel::new(5, 0),
                initial_interval: 16,
            },
        ];
        for mode in modes {
            let out = run_workload(&Ping, &p, &mode).unwrap();
            assert_eq!(out.stats.tasks_total, 600, "{}", mode.label());
            assert_eq!(out.log().iteration_count(), 300, "{}", mode.label());
            assert_eq!(out.report.iteration_finish.len(), 300, "{}", mode.label());
        }
    }

    #[test]
    fn drained_run_matches_full_retention() {
        let p = params();
        let cfg = Config::standard().with_min_trace_length(2).with_multi_scale_factor(16);
        let full = run_workload(&Ping, &p, &Mode::Auto(cfg.clone())).unwrap();
        let drained = run_workload_with(&Ping, &p, &Mode::Auto(cfg), LogRetention::Drain).unwrap();
        assert_eq!(full.report, drained.report, "retention never changes the report");
        assert_eq!(full.stats, drained.stats);
        assert!(drained.log.is_none());
    }

    #[test]
    fn manual_and_auto_beat_untraced() {
        let p = params();
        let auto_cfg = Config::standard().with_min_trace_length(2).with_multi_scale_factor(16);
        let untraced = measure_throughput(&Ping, &p, &Mode::Untraced, 50).unwrap();
        let manual = measure_throughput(&Ping, &p, &Mode::Manual, 50).unwrap();
        let auto = measure_throughput(&Ping, &p, &Mode::Auto(auto_cfg), 50).unwrap();
        // The Ping loop is only 2 tasks, so the per-replay constant `c`
        // (1 ms) caps the gain near 1.6x; real workloads amortize it.
        assert!(manual > untraced * 1.5, "manual {manual} vs untraced {untraced}");
        assert!(auto > untraced * 1.4, "auto {auto} vs untraced {untraced}");
        // Auto within the paper's 0.92x–1.03x of manual.
        let ratio = auto / manual;
        assert!((0.85..=1.1).contains(&ratio), "auto/manual ratio {ratio}");
    }

    #[test]
    fn machine_constructors() {
        let p = AppParams::perlmutter(16, ProblemSize::Medium, 10);
        assert_eq!((p.nodes, p.gpus_per_node, p.total_gpus()), (4, 4, 16));
        let e = AppParams::eos(64, ProblemSize::Large, 10);
        assert_eq!((e.nodes, e.gpus_per_node), (8, 8));
        let tiny = AppParams::eos(2, ProblemSize::Small, 10);
        assert_eq!((tiny.nodes, tiny.gpus_per_node), (1, 2));
    }

    #[test]
    #[should_panic(expected = "4 GPUs")]
    fn perlmutter_rejects_bad_gpu_count() {
        AppParams::perlmutter(6, ProblemSize::Small, 1);
    }
}

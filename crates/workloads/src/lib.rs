//! Task-stream models of the paper's evaluation applications.
//!
//! The evaluation of Apophenia (§6) runs five applications on Perlmutter
//! and Eos. This crate reproduces each application's *task-stream
//! structure* — iteration shapes, region usage, allocator behaviour,
//! irregularities — so the full Apophenia stack (hashing, mining,
//! matching, replay, cost simulation) runs for real against streams with
//! the same properties the paper describes:
//!
//! * [`jacobi`] — the Figure 1 motivating example (cuPyNumeric region
//!   renaming; naive manual tracing provably fails);
//! * [`s3d`] — combustion chemistry with Fortran+MPI hand-offs
//!   (Figure 6a);
//! * [`htr`] — hypersonic aerothermodynamics (Figure 6b);
//! * [`cfd`] — cuPyNumeric Navier-Stokes, no manual variant possible
//!   (Figure 7a);
//! * [`torchswe`] — cuPyNumeric shallow-water equations, many fields,
//!   overhead-bound at every problem size (Figure 7b);
//! * [`flexflow`] — DNN training, strong-scaled, where maximum trace
//!   length matters (Figure 8);
//! * [`synthetic`] — shape-isolated generators for ablations;
//! * [`recycle`] — the cuPyNumeric recycling allocator;
//! * [`driver`] — the untraced / manual / auto run harness;
//! * [`comm`] — communication tasks.

pub mod cfd;
pub mod comm;
pub mod driver;
pub mod flexflow;
pub mod htr;
pub mod jacobi;
pub mod recycle;
pub mod s3d;
pub mod synthetic;
pub mod torchswe;

pub use cfd::Cfd;
pub use driver::{
    measure_throughput, run_workload, AppParams, Driver, Mode, ProblemSize, RunOutcome, Workload,
};
pub use flexflow::FlexFlow;
pub use htr::Htr;
pub use jacobi::Jacobi;
pub use s3d::S3d;
pub use torchswe::TorchSwe;

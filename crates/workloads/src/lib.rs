//! Task-stream models of the paper's evaluation applications.
//!
//! The evaluation of Apophenia (§6) runs five applications on Perlmutter
//! and Eos. This crate reproduces each application's *task-stream
//! structure* — iteration shapes, region usage, allocator behaviour,
//! irregularities — so the full Apophenia stack (hashing, mining,
//! matching, replay, cost simulation) runs for real against streams with
//! the same properties the paper describes:
//!
//! * [`jacobi`] — the Figure 1 motivating example (cuPyNumeric region
//!   renaming; naive manual tracing provably fails);
//! * [`s3d`] — combustion chemistry with Fortran+MPI hand-offs
//!   (Figure 6a);
//! * [`htr`] — hypersonic aerothermodynamics (Figure 6b);
//! * [`cfd`] — cuPyNumeric Navier-Stokes, no manual variant possible
//!   (Figure 7a);
//! * [`torchswe`] — cuPyNumeric shallow-water equations, many fields,
//!   overhead-bound at every problem size (Figure 7b);
//! * [`flexflow`] — DNN training, strong-scaled, where maximum trace
//!   length matters (Figure 8);
//! * [`synthetic`] — shape-isolated generators for ablations;
//! * [`recycle`] — the cuPyNumeric recycling allocator;
//! * [`driver`] — the run harness;
//! * [`comm`] — communication tasks.
//!
//! Every workload issues through [`tasksim::issuer::TaskIssuer`], the one
//! object-safe contract shared by all front-ends, and the harness builds
//! that front-end from a [`driver::Mode`] (= [`apophenia::Tracing`]) via
//! [`apophenia::Session`] — untraced, manual, auto, and distributed runs
//! differ only in data:
//!
//! ```
//! use apophenia::Config;
//! use workloads::driver::{run_workload, AppParams, Mode, ProblemSize};
//!
//! let params = AppParams { nodes: 1, gpus_per_node: 1, size: ProblemSize::Small, iters: 300 };
//! let config = Config::standard()
//!     .with_min_trace_length(4)
//!     .with_batch_size(512)
//!     .with_multi_scale_factor(32);
//! let out = run_workload(&workloads::Jacobi, &params, &Mode::Auto(config)).unwrap();
//! assert!(out.stats.tasks_replayed > 0, "traced with zero annotations");
//! ```

pub mod cfd;
pub mod comm;
pub mod driver;
pub mod flexflow;
pub mod htr;
pub mod jacobi;
pub mod recycle;
pub mod s3d;
pub mod synthetic;
pub mod torchswe;

pub use cfd::Cfd;
pub use driver::{
    checkpoint_session, measure_throughput, resume_session, run_workload, AppParams, Mode,
    ProblemSize, RunOutcome, Workload,
};
pub use flexflow::FlexFlow;
pub use htr::Htr;
pub use jacobi::Jacobi;
pub use s3d::S3d;
pub use tasksim::issuer::TaskIssuer;
pub use torchswe::TorchSwe;

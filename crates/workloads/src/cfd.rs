//! CFD: cuPyNumeric Navier-Stokes channel flow (§6.1, Figure 7a).
//!
//! "CFD Python: the 12 steps to Navier-Stokes" ported to cuPyNumeric.
//! There is **no manually traced version**: temporaries cycle through the
//! recycling allocator (as in Figure 1), so the repeating unit of the
//! task stream does not correspond to a source-level iteration, and a
//! convergence check fires every few iterations, perturbing the stream
//! further. Manually tracing this program would require "manual
//! examination of allocator logs" (§6.1). Apophenia finds the true
//! periods automatically.
//!
//! Per iteration: velocity tentative-step array ops (with recycled
//! temporaries), a fixed-depth pressure-Poisson loop, boundary updates,
//! and a halo exchange per Poisson sweep; a residual-norm check every 10
//! iterations.

use crate::comm;
use crate::driver::{AppParams, Workload};
use crate::recycle::Recycler;
use tasksim::cost::Micros;
use tasksim::ids::{RegionId, TaskKindId, TraceId};
use tasksim::issuer::TaskIssuer;
use tasksim::runtime::RuntimeError;
use tasksim::task::TaskDesc;

const POISSON_SWEEPS: usize = 8;
const BASE_GPU_US: f64 = 750.0;

const OP_BASE: u32 = 700;
const HALO: TaskKindId = TaskKindId(699);

/// The CFD workload (cuPyNumeric; auto/untraced only).
#[derive(Debug, Clone, Copy, Default)]
pub struct Cfd;

struct CfdState {
    u: RegionId,
    v: RegionId,
    p: RegionId,
    rec: Recycler,
    gpu_time: Micros,
    gpus: u32,
}

impl CfdState {
    fn setup(driver: &mut dyn TaskIssuer, params: &AppParams) -> Self {
        Self {
            u: driver.create_region(1),
            v: driver.create_region(1),
            p: driver.create_region(1),
            rec: Recycler::new(1),
            gpu_time: Micros(BASE_GPU_US * params.size.granularity_factor()),
            gpus: params.total_gpus(),
        }
    }

    /// `out = op(a, b)` through a fresh temporary from the recycler.
    fn binop(
        &mut self,
        driver: &mut dyn TaskIssuer,
        kind: u32,
        a: RegionId,
        b: RegionId,
    ) -> Result<RegionId, RuntimeError> {
        let out = self.rec.alloc(driver);
        driver.execute_task(
            TaskDesc::new(TaskKindId(OP_BASE + kind))
                .reads(a)
                .reads(b)
                .writes(out)
                .gpu_time(self.gpu_time),
        )?;
        Ok(out)
    }

    /// Releases `r` back to the allocator unless it is one of the named
    /// persistent bindings (u, v, p) — the moment a Python temporary's
    /// refcount drops, cuPyNumeric recycles its region.
    fn drop_temp(&mut self, r: RegionId) {
        if r != self.u && r != self.v && r != self.p {
            self.rec.release(r);
        }
    }

    fn iteration(&mut self, driver: &mut dyn TaskIssuer, check: bool) -> Result<(), RuntimeError> {
        // Tentative velocity: a chain of array ops; each superseded
        // temporary is recycled *eagerly* (as its Python binding drops),
        // which is what keeps cuPyNumeric's steady-state region set small.
        let mut cur_u = self.u;
        let mut cur_v = self.v;
        for k in 0..6 {
            let tu = self.binop(driver, k, cur_u, cur_v)?;
            let tv = self.binop(driver, 10 + k, cur_v, cur_u)?;
            self.drop_temp(cur_u);
            self.drop_temp(cur_v);
            cur_u = tu;
            cur_v = tv;
        }
        // Pressure Poisson: fixed sweeps, halo exchange each.
        let mut cur_p = self.p;
        for _ in 0..POISSON_SWEEPS {
            driver.execute_task(comm::halo_exchange(HALO, cur_p, self.gpus))?;
            let b = self.binop(driver, 20, cur_u, cur_v)?;
            let p_new = self.binop(driver, 21, cur_p, b)?;
            self.rec.release(b);
            self.drop_temp(cur_p);
            cur_p = p_new;
        }
        // Velocity correction + boundary conditions.
        let u_new = self.binop(driver, 30, cur_u, cur_p)?;
        let v_new = self.binop(driver, 31, cur_v, cur_p)?;
        driver.execute_task(
            TaskDesc::new(TaskKindId(OP_BASE + 32)).read_writes(u_new).gpu_time(self.gpu_time),
        )?;
        driver.execute_task(
            TaskDesc::new(TaskKindId(OP_BASE + 33)).read_writes(v_new).gpu_time(self.gpu_time),
        )?;
        self.drop_temp(cur_u);
        self.drop_temp(cur_v);

        // The irregular part: residual norm every few iterations.
        if check {
            let r = self.binop(driver, 40, u_new, v_new)?;
            driver.execute_task(
                TaskDesc::new(TaskKindId(OP_BASE + 41)).reads(r).gpu_time(self.gpu_time),
            )?;
            self.rec.release(r);
        }

        // Rebind the persistent arrays (the Figure 1 rotation: the old
        // regions recycle and the new ones become u/v/p).
        let (old_u, old_v, old_p) = (self.u, self.v, self.p);
        self.u = u_new;
        self.v = v_new;
        self.p = cur_p;
        self.rec.release(old_u);
        self.rec.release(old_v);
        self.rec.release(old_p);
        Ok(())
    }
}

impl Workload for Cfd {
    fn name(&self) -> &'static str {
        "cfd"
    }

    fn has_manual(&self) -> bool {
        false
    }

    fn run(
        &self,
        driver: &mut dyn TaskIssuer,
        params: &AppParams,
        manual: bool,
    ) -> Result<(), RuntimeError> {
        assert!(!manual, "cfd has no manual variant (§6.1)");
        let mut st = CfdState::setup(driver, params);
        for i in 0..params.iters {
            st.iteration(driver, i % 10 == 9)?;
            driver.mark_iteration();
        }
        Ok(())
    }
}

/// Attempting the "natural" manual annotation (trace per iteration) on
/// this allocator-recycled stream — demonstrably invalid, like Figure 1.
///
/// # Errors
///
/// Returns the trace validation error the runtime raises.
pub fn run_naive_manual(rt: &mut dyn TaskIssuer, params: &AppParams) -> Result<(), RuntimeError> {
    let mut st = CfdState::setup(rt, params);
    for i in 0..params.iters {
        rt.begin_trace(TraceId(700))?;
        st.iteration(rt, i % 10 == 9)?;
        rt.end_trace(TraceId(700))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{measure_throughput, run_workload, Mode, ProblemSize};
    use apophenia::Config;
    use tasksim::runtime::{Runtime, RuntimeConfig};

    fn auto_cfg() -> Config {
        Config::standard().with_batch_size(2000).with_multi_scale_factor(200)
    }

    #[test]
    fn stream_is_not_manually_traceable() {
        let mut rt = Runtime::new(RuntimeConfig::single_node(8));
        let p = AppParams::eos(8, ProblemSize::Small, 10);
        let err = run_naive_manual(&mut rt, &p).unwrap_err();
        assert!(matches!(err, RuntimeError::Trace(_)), "per-iteration annotation invalid: {err}");
    }

    #[test]
    fn apophenia_traces_cfd() {
        let p = AppParams::eos(8, ProblemSize::Small, 200);
        let out = run_workload(&Cfd, &p, &Mode::Auto(auto_cfg())).unwrap();
        assert_eq!(out.stats.mismatches, 0);
        assert!(out.stats.replayed_fraction() > 0.3, "{}", out.stats);
    }

    #[test]
    fn figure7a_auto_beats_untraced_at_scale() {
        let p = AppParams::eos(64, ProblemSize::Small, 400);
        let auto = measure_throughput(&Cfd, &p, &Mode::Auto(auto_cfg()), 320).unwrap();
        let untraced = measure_throughput(&Cfd, &p, &Mode::Untraced, 320).unwrap();
        assert!(auto > untraced * 1.3, "auto {auto} vs untraced {untraced}");
    }

    #[test]
    fn large_problem_less_sensitive() {
        let p = AppParams::eos(8, ProblemSize::Large, 400);
        let auto = measure_throughput(&Cfd, &p, &Mode::Auto(auto_cfg()), 320).unwrap();
        let untraced = measure_throughput(&Cfd, &p, &Mode::Untraced, 320).unwrap();
        let speedup = auto / untraced;
        assert!(speedup < 1.5, "large problems hide more overhead: {speedup}");
    }

    #[test]
    fn convergence_checks_present_but_rare() {
        let p = AppParams::eos(8, ProblemSize::Small, 21);
        let out = run_workload(&Cfd, &p, &Mode::Untraced).unwrap();
        // Checks add tasks relative to a run one check shorter.
        let base = run_workload(&Cfd, &AppParams::eos(8, ProblemSize::Small, 14), &Mode::Untraced)
            .unwrap();
        assert!(out.stats.tasks_total > base.stats.tasks_total);
    }
}

//! Synthetic task-stream generators for ablations and stress tests.
//!
//! These isolate stream *shapes* — pure loops, noisy loops, nested loops,
//! phase changes, random streams — so the ablation benches can compare
//! mining algorithms and scoring variants without application noise.

use crate::driver::{AppParams, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tasksim::cost::Micros;
use tasksim::ids::{RegionId, TaskKindId};
use tasksim::issuer::TaskIssuer;
use tasksim::runtime::RuntimeError;
use tasksim::task::TaskDesc;

const KIND_BASE: u32 = 2000;

/// A stream that repeats a `period`-task loop body, optionally inserting a
/// unique "convergence check" task every `noise_every` iterations
/// (0 = never) — the §4.2 motivation for relaxing tandem repeats.
#[derive(Debug, Clone, Copy)]
pub struct NoisyLoop {
    /// Loop-body length in tasks.
    pub period: usize,
    /// Insert a unique task every this many iterations (0 = never).
    pub noise_every: usize,
    /// GPU time per task.
    pub gpu_us: f64,
}

impl Default for NoisyLoop {
    fn default() -> Self {
        Self { period: 32, noise_every: 5, gpu_us: 200.0 }
    }
}

impl NoisyLoop {
    fn body(
        &self,
        driver: &mut dyn TaskIssuer,
        a: RegionId,
        b: RegionId,
    ) -> Result<(), RuntimeError> {
        for k in 0..self.period {
            let (src, dst) = if k % 2 == 0 { (a, b) } else { (b, a) };
            driver.execute_task(
                TaskDesc::new(TaskKindId(KIND_BASE + k as u32))
                    .reads(src)
                    .read_writes(dst)
                    .gpu_time(Micros(self.gpu_us)),
            )?;
        }
        Ok(())
    }
}

impl Workload for NoisyLoop {
    fn name(&self) -> &'static str {
        "noisy-loop"
    }

    fn has_manual(&self) -> bool {
        true
    }

    fn run(
        &self,
        driver: &mut dyn TaskIssuer,
        params: &AppParams,
        manual: bool,
    ) -> Result<(), RuntimeError> {
        let a = driver.create_region(1);
        let b = driver.create_region(1);
        for i in 0..params.iters {
            if manual {
                driver.begin_trace(tasksim::ids::TraceId(2000))?;
            }
            self.body(driver, a, b)?;
            if manual {
                driver.end_trace(tasksim::ids::TraceId(2000))?;
            }
            if self.noise_every > 0 && i % self.noise_every == self.noise_every - 1 {
                // Unique task: a fresh kind every time.
                driver.execute_task(
                    TaskDesc::new(TaskKindId(KIND_BASE + 5000 + i as u32))
                        .reads(a)
                        .gpu_time(Micros(self.gpu_us)),
                )?;
            }
            driver.mark_iteration();
        }
        Ok(())
    }
}

/// A fully random stream: no repeats for the miner to find.
#[derive(Debug, Clone, Copy)]
pub struct RandomStream {
    /// RNG seed.
    pub seed: u64,
    /// Distinct task kinds to draw from (large → few accidental repeats).
    pub kinds: u32,
}

impl Default for RandomStream {
    fn default() -> Self {
        Self { seed: 7, kinds: 10_000 }
    }
}

impl Workload for RandomStream {
    fn name(&self) -> &'static str {
        "random-stream"
    }

    fn has_manual(&self) -> bool {
        false
    }

    fn run(
        &self,
        driver: &mut dyn TaskIssuer,
        params: &AppParams,
        manual: bool,
    ) -> Result<(), RuntimeError> {
        assert!(!manual);
        let a = driver.create_region(1);
        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..params.iters {
            for _ in 0..16 {
                let kind = TaskKindId(KIND_BASE + 10_000 + rng.gen_range(0..self.kinds));
                driver.execute_task(TaskDesc::new(kind).read_writes(a).gpu_time(Micros(100.0)))?;
            }
            driver.mark_iteration();
        }
        Ok(())
    }
}

/// A program with two phases: loop A for the first half, then loop B —
/// exercises the scoring function's exploration/exploitation switch
/// (count capping lets Apophenia abandon A's traces for B's).
#[derive(Debug, Clone, Copy)]
pub struct PhaseChange {
    /// Tasks per loop body.
    pub period: usize,
    /// GPU time per task.
    pub gpu_us: f64,
}

impl Default for PhaseChange {
    fn default() -> Self {
        Self { period: 24, gpu_us: 200.0 }
    }
}

impl Workload for PhaseChange {
    fn name(&self) -> &'static str {
        "phase-change"
    }

    fn has_manual(&self) -> bool {
        false
    }

    fn run(
        &self,
        driver: &mut dyn TaskIssuer,
        params: &AppParams,
        manual: bool,
    ) -> Result<(), RuntimeError> {
        assert!(!manual);
        let a = driver.create_region(1);
        let b = driver.create_region(1);
        for i in 0..params.iters {
            let base = if i < params.iters / 2 { KIND_BASE + 20_000 } else { KIND_BASE + 30_000 };
            for k in 0..self.period {
                let (src, dst) = if k % 2 == 0 { (a, b) } else { (b, a) };
                driver.execute_task(
                    TaskDesc::new(TaskKindId(base + k as u32))
                        .reads(src)
                        .read_writes(dst)
                        .gpu_time(Micros(self.gpu_us)),
                )?;
            }
            driver.mark_iteration();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_workload, Mode, ProblemSize};
    use apophenia::Config;

    fn p(iters: usize) -> AppParams {
        AppParams { nodes: 1, gpus_per_node: 1, size: ProblemSize::Small, iters }
    }

    fn cfg() -> Config {
        Config::standard()
            .with_min_trace_length(8)
            .with_batch_size(1024)
            .with_multi_scale_factor(64)
    }

    #[test]
    fn noisy_loop_traced_despite_noise() {
        let w = NoisyLoop::default();
        let out = run_workload(&w, &p(200), &Mode::Auto(cfg())).unwrap();
        assert!(out.stats.replayed_fraction() > 0.5, "{}", out.stats);
        assert_eq!(out.stats.mismatches, 0);
    }

    #[test]
    fn random_stream_stays_untraced() {
        let w = RandomStream::default();
        let out = run_workload(&w, &p(100), &Mode::Auto(cfg())).unwrap();
        assert_eq!(out.stats.tasks_replayed, 0, "{}", out.stats);
    }

    #[test]
    fn phase_change_adapts() {
        let w = PhaseChange::default();
        let out = run_workload(&w, &p(400), &Mode::Auto(cfg())).unwrap();
        // Both phases must end up traced: more than half of ALL tasks
        // replayed implies the second phase was adopted too.
        assert!(out.stats.replayed_fraction() > 0.5, "{}", out.stats);
    }

    #[test]
    fn manual_matches_noisy_loop_structure() {
        let w = NoisyLoop::default();
        let out = run_workload(&w, &p(100), &Mode::Manual).unwrap();
        assert_eq!(out.stats.mismatches, 0);
        assert_eq!(out.stats.trace_replays, 99);
    }
}

//! The paper's motivating example (Figure 1): Jacobi iteration in
//! cuPyNumeric.
//!
//! ```python
//! for i in range(iters):
//!     x = (b - np.dot(R, x)) / d
//! ```
//!
//! Each iteration issues `DOT(R, x, t1); SUB(b, t1, t2); DIV(t2, d, x')`
//! where `x'` is a *freshly allocated* region and the old `x` is released
//! to the recycler. In steady state `x` alternates between two region
//! names, so the repeating unit of the task stream is **two** source-level
//! iterations — which is exactly why wrapping one loop body in
//! `begin_trace(id)`/`end_trace(id)` is an invalid trace
//! ([`run_naive_manual`] reproduces the failure), while Apophenia finds
//! the period-2 trace automatically.

use crate::driver::{AppParams, Workload};
use crate::recycle::Recycler;
use tasksim::cost::Micros;
use tasksim::ids::{RegionId, TraceId};
use tasksim::issuer::TaskIssuer;
use tasksim::runtime::RuntimeError;
use tasksim::task::TaskDesc;

/// Task kinds issued by the Jacobi solver.
pub mod kinds {
    use tasksim::ids::TaskKindId;

    /// `t1 = R · x`
    pub const DOT: TaskKindId = TaskKindId(100);
    /// `t2 = b - t1`
    pub const SUB: TaskKindId = TaskKindId(101);
    /// `x' = t2 / d`
    pub const DIV: TaskKindId = TaskKindId(102);
}

/// Per-task GPU time for the Jacobi kernels (weak-scaled: constant per
/// GPU).
const GPU_TIME: Micros = Micros(400.0);

/// State of one Jacobi solver instance.
struct JacobiState {
    r_matrix: RegionId,
    b: RegionId,
    d: RegionId,
    x: RegionId,
    rec: Recycler,
}

impl JacobiState {
    fn setup(driver: &mut dyn TaskIssuer) -> Self {
        let mut rec = Recycler::new(1);
        let r_matrix = driver.create_region(1);
        let b = driver.create_region(1);
        let d = driver.create_region(1);
        let x = rec.alloc(driver);
        Self { r_matrix, b, d, x, rec }
    }

    /// Issues one source-level iteration; returns the three tasks' stream.
    ///
    /// Temporaries are collected *eagerly*, the moment their last use
    /// completes ("the region it refers to can be collected and
    /// immediately reused by cuPyNumeric", §2) — this is what produces the
    /// steady state of exactly two alternating region names for `x`.
    fn iteration(&mut self, driver: &mut dyn TaskIssuer) -> Result<(), RuntimeError> {
        let t1 = self.rec.alloc(driver);
        driver.execute_task(
            TaskDesc::new(kinds::DOT)
                .reads(self.r_matrix)
                .reads(self.x)
                .writes(t1)
                .gpu_time(GPU_TIME),
        )?;
        let t2 = self.rec.alloc(driver);
        driver.execute_task(
            TaskDesc::new(kinds::SUB).reads(self.b).reads(t1).writes(t2).gpu_time(GPU_TIME),
        )?;
        self.rec.release(t1); // t1 dead after SUB
        let x_new = self.rec.alloc(driver);
        driver.execute_task(
            TaskDesc::new(kinds::DIV).reads(t2).reads(self.d).writes(x_new).gpu_time(GPU_TIME),
        )?;
        self.rec.release(t2); // t2 dead after DIV
        self.rec.release(self.x); // old x collected at rebinding
        self.x = x_new;
        Ok(())
    }
}

/// The Jacobi workload (no manual variant — that is the point).
#[derive(Debug, Clone, Copy, Default)]
pub struct Jacobi;

impl Workload for Jacobi {
    fn name(&self) -> &'static str {
        "jacobi"
    }

    fn has_manual(&self) -> bool {
        false
    }

    fn run(
        &self,
        driver: &mut dyn TaskIssuer,
        params: &AppParams,
        manual: bool,
    ) -> Result<(), RuntimeError> {
        assert!(!manual, "jacobi has no manual tracing variant");
        let mut st = JacobiState::setup(driver);
        for _ in 0..params.iters {
            st.iteration(driver)?;
            driver.mark_iteration();
        }
        Ok(())
    }
}

/// The naive manual annotation from §2: wrap *each* loop iteration in the
/// same trace id. Returns the error Legion raises — a sequence mismatch
/// caused by the region renaming.
///
/// # Errors
///
/// Always returns [`RuntimeError::Trace`] with a `SequenceMismatch` (that
/// is what this function demonstrates); propagates other runtime errors
/// if the setup itself fails.
pub fn run_naive_manual(rt: &mut dyn TaskIssuer, iters: usize) -> Result<(), RuntimeError> {
    let mut st = JacobiState::setup(rt);
    for _ in 0..iters {
        rt.begin_trace(TraceId(77))?;
        let res = st.iteration(rt);
        match res {
            Ok(()) => rt.end_trace(TraceId(77))?,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// The correct-but-brittle manual annotation from §2: trace *pairs* of
/// iterations, matching the allocator's period-2 steady state. Skips the
/// first iteration (before the steady state is established).
///
/// # Errors
///
/// Propagates runtime errors (none are expected while the allocator's
/// steady state holds).
pub fn run_period2_manual(rt: &mut dyn TaskIssuer, iters: usize) -> Result<(), RuntimeError> {
    let mut st = JacobiState::setup(rt);
    // Warm the allocator into its steady state.
    st.iteration(rt)?;
    rt.mark_iteration();
    let mut remaining = iters.saturating_sub(1);
    while remaining >= 2 {
        rt.begin_trace(TraceId(78))?;
        st.iteration(rt)?;
        st.iteration(rt)?;
        rt.end_trace(TraceId(78))?;
        rt.mark_iteration();
        rt.mark_iteration();
        remaining -= 2;
    }
    if remaining == 1 {
        st.iteration(rt)?;
        rt.mark_iteration();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_workload, Mode, ProblemSize};
    use apophenia::Config;
    use tasksim::runtime::{Runtime, RuntimeConfig};
    use tasksim::trace::TraceError;

    fn params(iters: usize) -> AppParams {
        AppParams { nodes: 1, gpus_per_node: 1, size: ProblemSize::Small, iters }
    }

    /// Collect the hash stream of an untraced run.
    fn hash_stream(iters: usize) -> Vec<u64> {
        let out = run_workload(&Jacobi, &params(iters), &Mode::Untraced).unwrap();
        out.log().task_records().map(|r| r.hash.0).collect()
    }

    #[test]
    fn stream_has_period_two_not_one() {
        // Figure 1b: the steady-state stream repeats every 6 tasks (two
        // iterations), not every 3.
        let h = hash_stream(12);
        assert_eq!(h.len(), 36);
        let steady = &h[12..30];
        for (i, _) in steady.iter().enumerate().take(steady.len() - 6) {
            assert_eq!(steady[i], steady[i + 6], "period 6 at {i}");
        }
        // And the DOT task differs between consecutive iterations.
        assert_ne!(h[12], h[15], "consecutive iterations differ (x1 vs x2)");
    }

    #[test]
    fn naive_manual_annotation_fails_with_mismatch() {
        let mut rt = Runtime::new(RuntimeConfig::single_node(1));
        let err = run_naive_manual(&mut rt, 5).unwrap_err();
        assert!(
            matches!(err, RuntimeError::Trace(TraceError::SequenceMismatch { .. })),
            "the §2 failure mode: {err}"
        );
    }

    #[test]
    fn period2_manual_annotation_succeeds() {
        let mut rt = Runtime::new(RuntimeConfig::single_node(1));
        run_period2_manual(&mut rt, 21).expect("period-2 traces are valid");
        assert!(rt.stats().trace_replays >= 8, "{}", rt.stats());
        assert_eq!(rt.stats().mismatches, 0);
    }

    #[test]
    fn apophenia_traces_jacobi_automatically() {
        let cfg = Config::standard()
            .with_min_trace_length(4)
            .with_batch_size(512)
            .with_multi_scale_factor(32);
        let out = run_workload(&Jacobi, &params(600), &Mode::Auto(cfg)).unwrap();
        assert!(
            out.stats.replayed_fraction() > 0.5,
            "Apophenia handles the region renaming: {}",
            out.stats
        );
        assert_eq!(out.stats.mismatches, 0);
        assert!(out.warmup_iterations.is_some(), "steady state reached");
    }

    #[test]
    fn auto_beats_untraced_on_jacobi() {
        let cfg = Config::standard()
            .with_min_trace_length(4)
            .with_batch_size(512)
            .with_multi_scale_factor(32);
        let p = params(600);
        let auto = crate::driver::measure_throughput(&Jacobi, &p, &Mode::Auto(cfg), 300).unwrap();
        let untraced =
            crate::driver::measure_throughput(&Jacobi, &p, &Mode::Untraced, 300).unwrap();
        assert!(auto > untraced * 1.5, "auto {auto} vs untraced {untraced}");
    }
}

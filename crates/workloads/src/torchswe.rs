//! TorchSWE: cuPyNumeric shallow-water equation solver (§6.1, Figure 7b).
//!
//! The largest cuPyNumeric application: it "maintains a large number of
//! fields for each simulated point, and issues different array operations
//! on each field". Two consequences the reproduction preserves:
//!
//! * iterations contain *many* small tasks (one sweep per field per
//!   stage), so **no problem size hides Legion's untraced overhead** —
//!   adding resolution grows memory faster than task granularity, which
//!   is why the per-size granularity factors below are compressed
//!   relative to the other apps;
//! * there is no manually traced version (an order of magnitude more code
//!   than CFD, plus the same allocator recycling).

use crate::comm;
use crate::driver::{AppParams, ProblemSize, Workload};
use crate::recycle::Recycler;
use tasksim::cost::Micros;
use tasksim::ids::{RegionId, TaskKindId, TraceId};
use tasksim::issuer::TaskIssuer;
use tasksim::runtime::RuntimeError;
use tasksim::task::TaskDesc;

/// Conserved + auxiliary fields per point (h, hu, hv, slopes, fluxes...).
const FIELDS: usize = 12;
/// Array operations per field per iteration.
const OPS_PER_FIELD: usize = 13;
const BASE_GPU_US: f64 = 550.0;

const OP_BASE: u32 = 900;
const HALO: TaskKindId = TaskKindId(899);

/// Memory-bound granularity: sizes barely increase per-task time (§6.1).
fn granularity(size: ProblemSize) -> f64 {
    match size {
        ProblemSize::Small => 1.0,
        ProblemSize::Medium => 1.15,
        ProblemSize::Large => 1.3,
    }
}

/// The TorchSWE workload (auto/untraced only).
#[derive(Debug, Clone, Copy, Default)]
pub struct TorchSwe;

struct SweState {
    fields: Vec<RegionId>,
    rec: Recycler,
    gpu_time: Micros,
    gpus: u32,
}

impl SweState {
    fn setup(driver: &mut dyn TaskIssuer, params: &AppParams) -> Self {
        Self {
            fields: (0..FIELDS).map(|_| driver.create_region(1)).collect(),
            rec: Recycler::new(1),
            gpu_time: Micros(BASE_GPU_US * granularity(params.size)),
            gpus: params.total_gpus(),
        }
    }

    fn iteration(&mut self, driver: &mut dyn TaskIssuer) -> Result<(), RuntimeError> {
        // Halo exchange on the conserved fields.
        for f in 0..3 {
            driver.execute_task(comm::halo_exchange(HALO, self.fields[f], self.gpus))?;
        }
        // Per-field update chains through recycled temporaries.
        for (fi, &field) in self.fields.clone().iter().enumerate() {
            let mut cur = field;
            let mut temps = Vec::new();
            for op in 0..OPS_PER_FIELD - 1 {
                let out = self.rec.alloc(driver);
                let kind = TaskKindId(OP_BASE + (fi * OPS_PER_FIELD + op) as u32);
                let neighbor = self.fields[(fi + 1) % FIELDS];
                driver.execute_task(
                    TaskDesc::new(kind)
                        .reads(cur)
                        .reads(neighbor)
                        .writes(out)
                        .gpu_time(self.gpu_time),
                )?;
                temps.push(cur);
                cur = out;
            }
            // The new field value is a fresh array; the Python attribute
            // rebinds and the old region recycles (the Figure 1 rotation —
            // this is why no per-iteration manual trace is valid).
            let new_field = self.rec.alloc(driver);
            driver.execute_task(
                TaskDesc::new(TaskKindId(OP_BASE + 8000 + fi as u32))
                    .reads(cur)
                    .writes(new_field)
                    .gpu_time(self.gpu_time),
            )?;
            temps.push(cur);
            self.fields[fi] = new_field;
            for t in temps {
                if t != new_field {
                    self.rec.release(t);
                }
            }
            self.rec.release(field);
        }
        Ok(())
    }
}

impl Workload for TorchSwe {
    fn name(&self) -> &'static str {
        "torchswe"
    }

    fn has_manual(&self) -> bool {
        false
    }

    fn run(
        &self,
        driver: &mut dyn TaskIssuer,
        params: &AppParams,
        manual: bool,
    ) -> Result<(), RuntimeError> {
        assert!(!manual, "torchswe has no manual variant (§6.1)");
        let mut st = SweState::setup(driver, params);
        for _ in 0..params.iters {
            st.iteration(driver)?;
            driver.mark_iteration();
        }
        Ok(())
    }
}

/// Demonstrates that the rewrite-for-manual-tracing route is infeasible:
/// the per-iteration annotation is invalid here too.
///
/// # Errors
///
/// Returns the trace validation error the runtime raises.
pub fn run_naive_manual(rt: &mut dyn TaskIssuer, params: &AppParams) -> Result<(), RuntimeError> {
    let mut st = SweState::setup(rt, params);
    for _ in 0..params.iters {
        rt.begin_trace(TraceId(900))?;
        st.iteration(rt)?;
        rt.end_trace(TraceId(900))?;
    }
    Ok(())
}

/// Tasks per iteration (exposed for benches).
pub const fn tasks_per_iteration() -> usize {
    3 + FIELDS * OPS_PER_FIELD
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{measure_throughput, run_workload, Mode};
    use apophenia::Config;
    use tasksim::runtime::{Runtime, RuntimeConfig};

    fn auto_cfg() -> Config {
        Config::standard().with_batch_size(2500).with_multi_scale_factor(250)
    }

    #[test]
    fn many_small_tasks_per_iteration() {
        assert_eq!(tasks_per_iteration(), 159);
        let p = AppParams::eos(8, ProblemSize::Small, 5);
        let out = run_workload(&TorchSwe, &p, &Mode::Untraced).unwrap();
        assert_eq!(out.stats.tasks_total as usize, 5 * tasks_per_iteration());
    }

    #[test]
    fn no_size_hides_overhead_untraced() {
        // §6.1: "there does not exist a problem size for TorchSWE that can
        // hide Legion's runtime overhead without tracing" — even Large is
        // analysis-bound at 8 GPUs.
        let p = AppParams::eos(8, ProblemSize::Large, 60);
        let out = run_workload(&TorchSwe, &p, &Mode::Untraced).unwrap();
        let report = &out.report;
        assert!(report.stall_fraction() > 0.2, "stalls: {}", report.stall_fraction());
    }

    #[test]
    fn naive_manual_fails() {
        let mut rt = Runtime::new(RuntimeConfig::single_node(8));
        let p = AppParams::eos(8, ProblemSize::Small, 6);
        assert!(run_naive_manual(&mut rt, &p).is_err());
    }

    #[test]
    fn figure7b_auto_speedup_at_scale() {
        let p = AppParams::eos(64, ProblemSize::Small, 300);
        let auto = measure_throughput(&TorchSwe, &p, &Mode::Auto(auto_cfg()), 240).unwrap();
        let untraced = measure_throughput(&TorchSwe, &p, &Mode::Untraced, 240).unwrap();
        let speedup = auto / untraced;
        assert!(speedup > 1.5, "auto speedup at 64 GPUs: {speedup}");
    }

    #[test]
    fn auto_gains_even_at_one_gpu() {
        // Figure 7b: untraced is behind from the start.
        let p = AppParams::eos(1, ProblemSize::Small, 300);
        let auto = measure_throughput(&TorchSwe, &p, &Mode::Auto(auto_cfg()), 240).unwrap();
        let untraced = measure_throughput(&TorchSwe, &p, &Mode::Untraced, 240).unwrap();
        assert!(auto > untraced, "auto {auto} vs untraced {untraced}");
    }
}

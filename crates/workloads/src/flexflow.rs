//! FlexFlow: distributed DNN training, strong-scaled (§6.2, Figure 8).
//!
//! Trains a CANDLE `pilot1`-like MLP with data parallelism (the paper's
//! footnote 4: only data parallelism was used). Strong scaling fixes the
//! global batch, so per-GPU work shrinks as GPUs are added and runtime
//! overhead is progressively exposed:
//!
//! * **untraced** stops scaling once per-iteration analysis (~120 ms)
//!   exceeds shrinking execution;
//! * **manual** traces each training iteration (~120 tasks);
//! * **auto-5000** (standard Apophenia) mines multi-iteration candidates
//!   thousands of tasks long, whose templates replay *slower per task*
//!   (the [`tasksim::cost::CostModel::replay_len_knee`] effect — Legion's
//!   footnote-5 shortcoming), visibly losing to shorter traces at scale;
//! * **auto-200** caps replayed traces at 200 tasks — about the manual
//!   trace length — and recovers manual-level performance (0.97x in the
//!   paper).

use crate::comm;
use crate::driver::{AppParams, Workload};
use tasksim::cost::Micros;
use tasksim::ids::{RegionId, TaskKindId, TraceId};
use tasksim::issuer::TaskIssuer;
use tasksim::runtime::RuntimeError;
use tasksim::task::TaskDesc;

/// Network depth (dense layers).
const LAYERS: usize = 30;
/// Per-op GPU microseconds at 1 GPU (strong-scaled: divided by GPU count).
const BASE_GPU_US: f64 = 3000.0;
/// Allreduce payload factor (gradient exchange is bandwidth-heavy).
const ALLREDUCE_PAYLOAD: f64 = 6.0;

const KIND_BASE: u32 = 1100;
const ALLREDUCE: TaskKindId = TaskKindId(1099);

/// The FlexFlow workload. `size` is ignored (strong scaling fixes the
/// problem); GPU count comes from the machine parameters.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlexFlow;

struct FfState {
    activations: Vec<RegionId>,
    weights: Vec<RegionId>,
    gradients: Vec<RegionId>,
    gpu_time: Micros,
    gpus: u32,
}

impl FfState {
    fn setup(driver: &mut dyn TaskIssuer, params: &AppParams) -> Self {
        let gpus = params.total_gpus();
        Self {
            activations: (0..=LAYERS).map(|_| driver.create_region(1)).collect(),
            weights: (0..LAYERS).map(|_| driver.create_region(1)).collect(),
            gradients: (0..LAYERS).map(|_| driver.create_region(1)).collect(),
            gpu_time: Micros(BASE_GPU_US / f64::from(gpus)),
            gpus,
        }
    }

    fn training_iteration(&self, driver: &mut dyn TaskIssuer) -> Result<(), RuntimeError> {
        // Forward pass.
        for l in 0..LAYERS {
            driver.execute_task(
                TaskDesc::new(TaskKindId(KIND_BASE + l as u32))
                    .reads(self.activations[l])
                    .reads(self.weights[l])
                    .writes(self.activations[l + 1])
                    .gpu_time(self.gpu_time),
            )?;
        }
        // Backward pass with gradient allreduce per layer.
        for l in (0..LAYERS).rev() {
            driver.execute_task(
                TaskDesc::new(TaskKindId(KIND_BASE + 100 + l as u32))
                    .reads(self.activations[l])
                    .reads(self.weights[l])
                    .writes(self.gradients[l])
                    .gpu_time(self.gpu_time),
            )?;
            driver.execute_task(comm::allreduce(
                ALLREDUCE,
                self.gradients[l],
                self.gpus,
                ALLREDUCE_PAYLOAD,
            ))?;
        }
        // Optimizer update.
        for l in 0..LAYERS {
            driver.execute_task(
                TaskDesc::new(TaskKindId(KIND_BASE + 200 + l as u32))
                    .reads(self.gradients[l])
                    .read_writes(self.weights[l])
                    .gpu_time(self.gpu_time),
            )?;
        }
        Ok(())
    }
}

impl Workload for FlexFlow {
    fn name(&self) -> &'static str {
        "flexflow"
    }

    fn has_manual(&self) -> bool {
        true
    }

    fn run(
        &self,
        driver: &mut dyn TaskIssuer,
        params: &AppParams,
        manual: bool,
    ) -> Result<(), RuntimeError> {
        let st = FfState::setup(driver, params);
        for _ in 0..params.iters {
            if manual {
                driver.begin_trace(TraceId(1100))?;
            }
            st.training_iteration(driver)?;
            if manual {
                driver.end_trace(TraceId(1100))?;
            }
            driver.mark_iteration();
        }
        Ok(())
    }
}

/// Tasks per training iteration (exposed for benches): forward + backward
/// (with allreduce) + update.
pub const fn tasks_per_iteration() -> usize {
    LAYERS * 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{measure_throughput, run_workload, Mode, ProblemSize};
    use apophenia::Config;

    fn p(gpus: u32, iters: usize) -> AppParams {
        AppParams::eos(gpus, ProblemSize::Small, iters)
    }

    fn auto_5000() -> Config {
        Config::standard().with_multi_scale_factor(500)
    }

    fn auto_200() -> Config {
        auto_5000().with_max_trace_length(200)
    }

    #[test]
    fn iteration_task_count() {
        assert_eq!(tasks_per_iteration(), 120);
        let out = run_workload(&FlexFlow, &p(1, 4), &Mode::Untraced).unwrap();
        assert_eq!(out.stats.tasks_total as usize, 4 * tasks_per_iteration());
    }

    #[test]
    fn untraced_stops_scaling() {
        // Figure 8: untraced throughput stops improving past a few GPUs.
        let t8 = measure_throughput(&FlexFlow, &p(8, 40), &Mode::Untraced, 20).unwrap();
        let t32 = measure_throughput(&FlexFlow, &p(32, 40), &Mode::Untraced, 20).unwrap();
        assert!(t32 < t8 * 1.3, "untraced gains little from 8→32 GPUs: {t8} → {t32}");
    }

    #[test]
    fn manual_keeps_scaling() {
        let t8 = measure_throughput(&FlexFlow, &p(8, 40), &Mode::Manual, 20).unwrap();
        let t32 = measure_throughput(&FlexFlow, &p(32, 40), &Mode::Manual, 20).unwrap();
        assert!(t32 > t8 * 1.5, "manual scales 8→32 GPUs: {t8} → {t32}");
    }

    #[test]
    fn figure8_auto200_matches_manual_and_beats_auto5000() {
        let iters = 400;
        let manual = measure_throughput(&FlexFlow, &p(32, iters), &Mode::Manual, 320).unwrap();
        let a200 =
            measure_throughput(&FlexFlow, &p(32, iters), &Mode::Auto(auto_200()), 320).unwrap();
        let a5000 =
            measure_throughput(&FlexFlow, &p(32, iters), &Mode::Auto(auto_5000()), 320).unwrap();
        let ratio = a200 / manual;
        assert!((0.85..=1.1).contains(&ratio), "auto-200/manual {ratio}");
        assert!(
            a200 > a5000 * 1.1,
            "short traces win at strong scale: a200 {a200} vs a5000 {a5000}"
        );
    }

    #[test]
    fn trace_length_effect_absent_at_small_scale() {
        // At 1 GPU execution dominates; both configurations tie.
        let iters = 400;
        let a200 =
            measure_throughput(&FlexFlow, &p(1, iters), &Mode::Auto(auto_200()), 320).unwrap();
        let a5000 =
            measure_throughput(&FlexFlow, &p(1, iters), &Mode::Auto(auto_5000()), 320).unwrap();
        let ratio = a200 / a5000;
        assert!((0.9..=1.1).contains(&ratio), "configs tie at 1 GPU: {ratio}");
    }
}

//! S3D: production combustion chemistry (§6.1, Figure 6a).
//!
//! The Legion port of S3D implements the right-hand-side function of a
//! Runge-Kutta scheme and interoperates with a legacy Fortran+MPI driver.
//! The stream structure we reproduce:
//!
//! * a unique setup phase (chemistry table initialization);
//! * per iteration, `STAGES` Runge-Kutta stages, each issuing a fixed
//!   sequence of chemistry/diffusion/advection index launches plus a halo
//!   exchange;
//! * a Fortran+MPI hand-off **every iteration for the first 10
//!   iterations, then every 10 iterations** — the irregularity that makes
//!   S3D's manual tracing "relatively complicated logic" (§6.1) and that
//!   tandem-repeat mining cannot absorb;
//! * the manual variant brackets each iteration's RHS work in a trace and
//!   keeps hand-offs outside, mirroring the production annotations.
//!
//! Calibration (see DESIGN.md §6): 200 RHS tasks/iteration; small-size
//! task granularity 1 ms, doubling per size class. On one Perlmutter node
//! untraced analysis (~200 ms/iter) roughly matches small-size execution,
//! so overhead is already visible at 4 GPUs and grows with node count —
//! the Figure 6a shape.

use crate::comm;
use crate::driver::{AppParams, Workload};
use tasksim::cost::Micros;
use tasksim::ids::{RegionId, TaskKindId, TraceId};
use tasksim::issuer::TaskIssuer;
use tasksim::runtime::RuntimeError;
use tasksim::task::TaskDesc;

/// Runge-Kutta stages per iteration.
const STAGES: usize = 4;
/// Compute tasks per stage (chemistry, diffusion, advection, ...).
const TASKS_PER_STAGE: usize = 48;
/// Base GPU time per task at the small problem size.
const BASE_GPU_US: f64 = 1000.0;

/// Kind bases (disjoint from other apps).
const SETUP_BASE: u32 = 200;
const RHS_BASE: u32 = 300;
const HALO: TaskKindId = TaskKindId(298);
const TO_FORTRAN: TaskKindId = TaskKindId(296);
const FROM_FORTRAN: TaskKindId = TaskKindId(297);

/// The S3D workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct S3d;

struct S3dState {
    field: RegionId,
    rhs: RegionId,
    chem: RegionId,
    gpu_time: Micros,
    gpus: u32,
}

impl S3dState {
    fn setup(driver: &mut dyn TaskIssuer, params: &AppParams) -> Result<Self, RuntimeError> {
        let field = driver.create_region(4);
        let rhs = driver.create_region(4);
        let chem = driver.create_region(1);
        // Unique setup tasks: chemistry table builds etc.
        for k in 0..24 {
            driver.execute_task(
                TaskDesc::new(TaskKindId(SETUP_BASE + k)).read_writes(chem).gpu_time(Micros(500.0)),
            )?;
        }
        Ok(Self {
            field,
            rhs,
            chem,
            gpu_time: Micros(BASE_GPU_US * params.size.granularity_factor()),
            gpus: params.total_gpus(),
        })
    }

    /// One RHS evaluation: the traceable body.
    fn rhs_body(&self, driver: &mut dyn TaskIssuer) -> Result<(), RuntimeError> {
        for stage in 0..STAGES {
            driver.execute_task(comm::halo_exchange(HALO, self.field, self.gpus))?;
            for t in 0..TASKS_PER_STAGE {
                let kind = TaskKindId(RHS_BASE + (stage * TASKS_PER_STAGE + t) as u32);
                driver.execute_task(
                    TaskDesc::new(kind)
                        .reads(self.field)
                        .reads(self.chem)
                        .read_writes(self.rhs)
                        .gpu_time(self.gpu_time),
                )?;
            }
        }
        // Integrate the stage results back into the field.
        driver.execute_task(
            TaskDesc::new(TaskKindId(RHS_BASE + 9000))
                .reads(self.rhs)
                .read_writes(self.field)
                .gpu_time(self.gpu_time),
        )?;
        Ok(())
    }

    /// The Fortran+MPI hand-off.
    fn handoff(&self, driver: &mut dyn TaskIssuer) -> Result<(), RuntimeError> {
        driver.execute_task(
            TaskDesc::new(TO_FORTRAN).reads(self.field).gpu_time(comm::latency(self.gpus) * 4.0),
        )?;
        driver.execute_task(
            TaskDesc::new(FROM_FORTRAN)
                .read_writes(self.field)
                .gpu_time(comm::latency(self.gpus) * 4.0),
        )?;
        Ok(())
    }

    /// Whether iteration `i` performs a hand-off (every iteration for the
    /// first 10, every 10th after).
    fn handoff_at(i: usize) -> bool {
        i < 10 || i.is_multiple_of(10)
    }
}

impl Workload for S3d {
    fn name(&self) -> &'static str {
        "s3d"
    }

    fn has_manual(&self) -> bool {
        true
    }

    fn run(
        &self,
        driver: &mut dyn TaskIssuer,
        params: &AppParams,
        manual: bool,
    ) -> Result<(), RuntimeError> {
        let st = S3dState::setup(driver, params)?;
        for i in 0..params.iters {
            if manual {
                // Production-style annotation: RHS in a trace, hand-offs
                // outside.
                driver.begin_trace(TraceId(500))?;
                st.rhs_body(driver)?;
                driver.end_trace(TraceId(500))?;
            } else {
                st.rhs_body(driver)?;
            }
            if S3dState::handoff_at(i) {
                st.handoff(driver)?;
            }
            driver.mark_iteration();
        }
        Ok(())
    }
}

/// Tasks issued per iteration by the RHS body (used by benches to reason
/// about expected trace lengths).
pub const fn rhs_tasks_per_iteration() -> usize {
    STAGES * (TASKS_PER_STAGE + 1) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{measure_throughput, run_workload, Mode, ProblemSize};
    use apophenia::Config;

    fn params(gpus: u32, size: ProblemSize, iters: usize) -> AppParams {
        AppParams::perlmutter(gpus, size, iters)
    }

    fn auto_cfg() -> Config {
        // Standard flags, smaller buffer for test speed (the iteration is
        // ~200 tasks; 2000 tokens hold many periods).
        Config::standard().with_batch_size(2000).with_multi_scale_factor(200)
    }

    #[test]
    fn stream_shape() {
        let out = run_workload(&S3d, &params(4, ProblemSize::Small, 12), &Mode::Untraced).unwrap();
        // 24 setup + 12 × (197 rhs) + handoffs (iters 0..10 and 10) ×2.
        let handoffs = (0..12).filter(|&i| S3dState::handoff_at(i)).count();
        let expect = 24 + 12 * rhs_tasks_per_iteration() + handoffs * 2;
        assert_eq!(out.stats.tasks_total as usize, expect);
    }

    #[test]
    fn manual_traces_replay_despite_handoffs() {
        let out = run_workload(&S3d, &params(4, ProblemSize::Small, 30), &Mode::Manual).unwrap();
        assert_eq!(out.stats.mismatches, 0);
        assert_eq!(out.stats.trace_replays, 29, "{}", out.stats);
    }

    #[test]
    fn auto_reaches_steady_state() {
        let out = run_workload(&S3d, &params(4, ProblemSize::Small, 80), &Mode::Auto(auto_cfg()))
            .unwrap();
        assert_eq!(out.stats.mismatches, 0);
        assert!(out.stats.replayed_fraction() > 0.4, "{}", out.stats);
        let w = out.warmup_iterations.expect("steady state reached");
        assert!(w <= 60, "warmup {w}");
    }

    #[test]
    fn figure6a_ordering_small_size_at_scale() {
        // At 64 GPUs, small problem size: auto ≈ manual > untraced.
        let p = params(64, ProblemSize::Small, 250);
        let auto = measure_throughput(&S3d, &p, &Mode::Auto(auto_cfg()), 200).unwrap();
        let manual = measure_throughput(&S3d, &p, &Mode::Manual, 200).unwrap();
        let untraced = measure_throughput(&S3d, &p, &Mode::Untraced, 200).unwrap();
        assert!(manual > untraced * 1.3, "manual {manual} vs untraced {untraced}");
        let ratio = auto / manual;
        assert!((0.85..=1.1).contains(&ratio), "auto/manual {ratio}");
    }

    #[test]
    fn large_size_hides_overhead_at_small_scale() {
        // At 4 GPUs, large problem size, untraced is competitive (within
        // ~10%) — the paper's low-end 0.98x.
        let p = params(4, ProblemSize::Large, 40);
        let manual = measure_throughput(&S3d, &p, &Mode::Manual, 20).unwrap();
        let untraced = measure_throughput(&S3d, &p, &Mode::Untraced, 20).unwrap();
        let speedup = manual / untraced;
        assert!(speedup < 1.15, "tracing gains little here: {speedup}");
        assert!(speedup > 0.95, "tracing must not hurt: {speedup}");
    }
}

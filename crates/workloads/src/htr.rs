//! HTR: hypersonic aerothermodynamics solver (§6.1, Figure 6b).
//!
//! HTR performs multi-physics simulations of hypersonic flows (spacecraft
//! reentry). Compared to S3D its iterations are shorter (fewer, larger
//! tasks), which is why the untraced version "performs competitively to
//! the traced version at small GPU counts" while "tracing is necessary for
//! performance at scale" — the Figure 6b shape.
//!
//! Calibration: 20 compute tasks + 4 exchanges per iteration at 2 ms base
//! granularity: one-node untraced analysis (~24 ms) hides under execution
//! (~40 ms), but the node-count scaling of analysis exposes it by 64 GPUs.

use crate::comm;
use crate::driver::{AppParams, Workload};
use tasksim::cost::Micros;
use tasksim::ids::{RegionId, TaskKindId, TraceId};
use tasksim::issuer::TaskIssuer;
use tasksim::runtime::RuntimeError;
use tasksim::task::TaskDesc;

const TASKS_PER_ITER: usize = 20;
const EXCHANGES_PER_ITER: usize = 4;
const BASE_GPU_US: f64 = 2000.0;

const SETUP_BASE: u32 = 400;
const STEP_BASE: u32 = 420;
const HALO: TaskKindId = TaskKindId(419);

/// The HTR workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Htr;

struct HtrState {
    flow: RegionId,
    fluxes: RegionId,
    gpu_time: Micros,
    gpus: u32,
}

impl HtrState {
    fn setup(driver: &mut dyn TaskIssuer, params: &AppParams) -> Result<Self, RuntimeError> {
        let flow = driver.create_region(8);
        let fluxes = driver.create_region(8);
        for k in 0..12 {
            driver.execute_task(
                TaskDesc::new(TaskKindId(SETUP_BASE + k)).read_writes(flow).gpu_time(Micros(800.0)),
            )?;
        }
        Ok(Self {
            flow,
            fluxes,
            gpu_time: Micros(BASE_GPU_US * params.size.granularity_factor()),
            gpus: params.total_gpus(),
        })
    }

    fn step(&self, driver: &mut dyn TaskIssuer) -> Result<(), RuntimeError> {
        for phase in 0..EXCHANGES_PER_ITER {
            driver.execute_task(comm::halo_exchange(HALO, self.flow, self.gpus))?;
            for t in 0..TASKS_PER_ITER / EXCHANGES_PER_ITER {
                let kind = TaskKindId(STEP_BASE + (phase * 5 + t) as u32);
                driver.execute_task(
                    TaskDesc::new(kind)
                        .reads(self.flow)
                        .read_writes(self.fluxes)
                        .gpu_time(self.gpu_time),
                )?;
            }
        }
        driver.execute_task(
            TaskDesc::new(TaskKindId(STEP_BASE + 9000))
                .reads(self.fluxes)
                .read_writes(self.flow)
                .gpu_time(self.gpu_time),
        )?;
        Ok(())
    }
}

impl Workload for Htr {
    fn name(&self) -> &'static str {
        "htr"
    }

    fn has_manual(&self) -> bool {
        true
    }

    fn run(
        &self,
        driver: &mut dyn TaskIssuer,
        params: &AppParams,
        manual: bool,
    ) -> Result<(), RuntimeError> {
        let st = HtrState::setup(driver, params)?;
        for _ in 0..params.iters {
            if manual {
                driver.begin_trace(TraceId(600))?;
            }
            st.step(driver)?;
            if manual {
                driver.end_trace(TraceId(600))?;
            }
            driver.mark_iteration();
        }
        Ok(())
    }
}

/// Tasks per iteration (exposed for benches).
pub const fn tasks_per_iteration() -> usize {
    TASKS_PER_ITER + EXCHANGES_PER_ITER + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{measure_throughput, run_workload, Mode, ProblemSize};
    use apophenia::Config;

    fn auto_cfg() -> Config {
        Config::standard().with_batch_size(1000).with_multi_scale_factor(100)
    }

    #[test]
    fn untraced_competitive_at_small_scale() {
        // Figure 6b: at 4 GPUs untraced is within ~15% of manual.
        let p = AppParams::perlmutter(4, ProblemSize::Small, 50);
        let manual = measure_throughput(&Htr, &p, &Mode::Manual, 25).unwrap();
        let untraced = measure_throughput(&Htr, &p, &Mode::Untraced, 25).unwrap();
        let speedup = manual / untraced;
        assert!(speedup < 1.2, "untraced competitive at 4 GPUs: {speedup}");
    }

    #[test]
    fn tracing_necessary_at_scale() {
        // Figure 6b: at 64 GPUs tracing wins on the small size.
        let p = AppParams::perlmutter(64, ProblemSize::Small, 50);
        let manual = measure_throughput(&Htr, &p, &Mode::Manual, 25).unwrap();
        let untraced = measure_throughput(&Htr, &p, &Mode::Untraced, 25).unwrap();
        assert!(manual > untraced * 1.05, "manual {manual} vs untraced {untraced}");
    }

    #[test]
    fn auto_matches_manual() {
        // The paper: 0.99x–1.01x of manual for HTR.
        let p = AppParams::perlmutter(16, ProblemSize::Small, 400);
        let auto = measure_throughput(&Htr, &p, &Mode::Auto(auto_cfg()), 300).unwrap();
        let manual = measure_throughput(&Htr, &p, &Mode::Manual, 300).unwrap();
        let ratio = auto / manual;
        assert!((0.9..=1.05).contains(&ratio), "auto/manual {ratio}");
    }

    #[test]
    fn min_trace_length_spans_iterations() {
        // With the standard min length of 25 and 25 tasks per iteration,
        // candidates must span at least one full iteration.
        let out = run_workload(
            &Htr,
            &AppParams::perlmutter(4, ProblemSize::Small, 120),
            &Mode::Auto(auto_cfg()),
        )
        .unwrap();
        assert!(out.stats.replayed_fraction() > 0.4, "{}", out.stats);
        assert_eq!(out.stats.mismatches, 0);
    }
}

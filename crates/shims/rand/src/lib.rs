//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the tiny subset of the `rand 0.8` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`], and
//! [`Rng::gen_range`]. The generator is SplitMix64 — deterministic for a
//! given seed on every platform, which is all the callers (seeded
//! synthetic workloads and tests) rely on. It makes no statistical or
//! cryptographic claims beyond that.

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Draws a value in `[lo, hi)` from `word`.
    fn from_word(word: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_word(word: u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi as u128) - (lo as u128);
                lo + ((word as u128) % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Types the plain [`Rng::gen`] method can produce.
pub trait Standard: Sized {
    /// Builds a value from one generator word.
    fn from_word(word: u64) -> Self;
}

impl Standard for u64 {
    fn from_word(word: u64) -> Self {
        word
    }
}

impl Standard for u32 {
    fn from_word(word: u64) -> Self {
        (word >> 32) as u32
    }
}

impl Standard for u16 {
    fn from_word(word: u64) -> Self {
        (word >> 48) as u16
    }
}

impl Standard for u8 {
    fn from_word(word: u64) -> Self {
        (word >> 56) as u8
    }
}

impl Standard for bool {
    fn from_word(word: u64) -> Self {
        word >> 63 == 1
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::from_word(self.next_u64(), range.start, range.end)
    }

    /// A draw over the type's full value space.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_word(self.next_u64())
    }
}

/// The subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Named generator types.

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
        }
        let u: usize = r.gen_range(0..3usize);
        assert!(u < 3);
    }

    #[test]
    fn gen_covers_values() {
        let mut r = StdRng::seed_from_u64(2);
        let distinct: std::collections::HashSet<u64> = (0..64).map(|_| r.gen()).collect();
        assert!(distinct.len() > 60, "full-width draws vary");
    }
}

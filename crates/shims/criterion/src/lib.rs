//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal wall-clock benchmark harness exposing the subset of the
//! criterion API its benches use: [`Criterion`], benchmark groups,
//! [`Bencher::iter`] / [`Bencher::iter_with_setup`], [`Throughput`],
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Each benchmark runs one untimed warmup iteration, then
//! `sample_size` timed iterations, and prints mean / min / max per
//! iteration (plus element throughput when configured). There is no
//! statistical analysis, HTML report, or baseline comparison.
//!
//! Like real criterion, passing `--test` on the bench command line
//! (`cargo bench -- --test`) runs every benchmark exactly once with no
//! timing report — the CI smoke mode that keeps benches from bit-rotting
//! without paying for full sample runs.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration declaration used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark id composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`, as criterion renders it.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self { sample_size, samples: Vec::with_capacity(sample_size) }
    }

    /// Times `routine` once per sample (after one untimed warmup call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Times `routine` on a fresh `setup()` value per sample; only the
    /// routine is timed.
    pub fn iter_with_setup<S, O, FS, FR>(&mut self, mut setup: FS, mut routine: FR)
    where
        FS: FnMut() -> S,
        FR: FnMut(S) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:50} no samples collected");
        return;
    }
    let ns: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e9).collect();
    let mean = ns.iter().sum::<f64>() / ns.len() as f64;
    let min = ns.iter().copied().fold(f64::INFINITY, f64::min);
    let max = ns.iter().copied().fold(0.0f64, f64::max);
    let fmt = |v: f64| -> String {
        if v >= 1e9 {
            format!("{:.3} s", v / 1e9)
        } else if v >= 1e6 {
            format!("{:.3} ms", v / 1e6)
        } else if v >= 1e3 {
            format!("{:.3} µs", v / 1e3)
        } else {
            format!("{v:.1} ns")
        }
    };
    let mut line = format!("{name:50} time: [{} {} {}]", fmt(min), fmt(mean), fmt(max));
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let per_sec = count as f64 / (mean / 1e9);
        line.push_str(&format!("  thrpt: {per_sec:.0} {unit}/s"));
    }
    println!("{line}");
}

/// Whether the bench binary was invoked in `--test` smoke mode.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// The harness entry point; holds default settings.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = test_mode();
        Self { sample_size: if test_mode { 1 } else { 10 }, test_mode }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark (ignored in
    /// `--test` mode, which always runs each benchmark once).
    pub fn sample_size(mut self, n: usize) -> Self {
        if !self.test_mode {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { sample_size: self.sample_size, throughput: None, parent: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name, &b.samples, None);
        self
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    throughput: Option<Throughput>,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for benchmarks in this group
    /// (ignored in `--test` mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self.parent.test_mode {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Declares the work done per iteration (adds a throughput line).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("  {id}"), &b.samples, self.throughput);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(&format!("  {id}"), &b.samples, self.throughput);
        self
    }

    /// Ends the group (printing is incremental; nothing left to flush).
    pub fn finish(self) {}
}

/// Declares a bench group function, optionally with a configured
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `fn main` running the given groups (use with
/// `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.throughput(Throughput::Elements(4));
        g.bench_function("iter", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| b.iter(|| x * 2));
        g.finish();
        c.bench_function("setup", |b| b.iter_with_setup(|| vec![1, 2, 3], |v| v.len()));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = noop_bench
    }

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
    }
}

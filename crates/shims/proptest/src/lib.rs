//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the subset of the proptest API its tests use: the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map`, [`collection::vec`],
//! [`arbitrary::any`], [`prop_oneof!`], [`strategy::Just`], and the
//! `prop_assert*` macros. Inputs are generated from a deterministic
//! generator seeded per test (by module path and test name), so failures
//! reproduce exactly across runs and machines.
//!
//! Deliberate simplifications relative to real proptest: no shrinking (a
//! failing case panics with the generated value's `Debug` available to the
//! assertion message), no persistence files, and `prop_assert*` are plain
//! `assert*` (they abort the case instead of returning `Err`).

pub mod test_runner {
    //! Case-count configuration and the deterministic generator.

    /// Per-block configuration; only `cases` is honoured.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }

        /// The case count (named accessor so macros avoid field syntax).
        pub fn cases_of(&self) -> u32 {
            self.cases
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator, seeded from the test's name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded by FNV-1a over `test_name`, so every test
        /// gets a distinct but reproducible stream.
        pub fn for_test(test_name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        /// The next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform draw in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    //! Input-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating test inputs.
    ///
    /// Unlike real proptest there is no value tree or shrinking:
    /// `generate` draws one concrete value.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy's concrete type (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between strategies of a common value type; the
    /// expansion of [`prop_oneof!`].
    pub struct Union<V> {
        options: Vec<(u32, BoxedStrategy<V>)>,
    }

    impl<V> Union<V> {
        /// Builds a union; weights must not all be zero.
        pub fn new(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            assert!(options.iter().any(|(w, _)| *w > 0), "prop_oneof! weights are all zero");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let total: u64 = self.options.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.below(total);
            for (w, s) in &self.options {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick within total")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start + (u128::from(rng.next_u64()) % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-value-space strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over `T`'s full value space.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates `Vec`s of `element` values with a length drawn uniformly
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the standard form: an optional
/// `#![proptest_config(ProptestConfig::with_cases(N))]` header followed by
/// `fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases_of() {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Weighted (`w => strategy`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Plain `assert!` (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Step {
        Go(u8),
        Stop,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(0u8..10, 2..8)) {
            prop_assert!((2..8).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u8..4, any::<u16>()),
            step in prop_oneof![3 => (0u8..4).prop_map(Step::Go), 1 => Just(Step::Stop)],
        ) {
            prop_assert!(pair.0 < 4);
            match step {
                Step::Go(k) => prop_assert!(k < 4),
                Step::Stop => {}
            }
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_test("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}

//! Control-replication integration: distributed Apophenia must make
//! identical decisions on every node, on real workload streams, under
//! skewed asynchronous-mining latencies (§5.1).

use apophenia::{Config, DelayModel, DistributedAutoTracer};
use tasksim::cost::Micros;
use tasksim::ids::TaskKindId;
use tasksim::issuer::TaskIssuer;
use tasksim::runtime::RuntimeConfig;
use tasksim::task::TaskDesc;

fn small_config() -> Config {
    Config::standard().with_min_trace_length(4).with_batch_size(512).with_multi_scale_factor(64)
}

/// Drives an S3D-shaped stream (RHS body + periodic hand-off) through a
/// distributed deployment.
fn drive_s3d_like(d: &mut DistributedAutoTracer, iters: usize) {
    let field = d.create_region(1);
    let rhs = d.create_region(1);
    for i in 0..iters {
        for k in 0..24u32 {
            d.execute_task(
                TaskDesc::new(TaskKindId(k)).reads(field).read_writes(rhs).gpu_time(Micros(500.0)),
            )
            .unwrap();
        }
        if i < 10 || i % 10 == 0 {
            d.execute_task(
                TaskDesc::new(TaskKindId(99)).read_writes(field).gpu_time(Micros(100.0)),
            )
            .unwrap();
        }
        d.mark_iteration();
    }
    d.flush().unwrap();
}

#[test]
fn four_nodes_identical_logs_under_skew() {
    let mut d = DistributedAutoTracer::new(
        RuntimeConfig::multi_node(4, 4),
        small_config(),
        DelayModel::new(2024, 100),
        16,
    );
    drive_s3d_like(&mut d, 200);
    d.check_lockstep().expect("all nodes agree");
    let s = d.node_runtime(0).stats();
    assert!(s.trace_replays > 0, "tracing happened: {s}");
    for n in 1..d.node_count() {
        assert_eq!(d.node_runtime(n).stats(), s, "node {n} stats equal");
    }
}

#[test]
fn agreement_interval_adapts_and_stops_stalling() {
    let mut d = DistributedAutoTracer::new(
        RuntimeConfig::multi_node(2, 4),
        small_config(),
        DelayModel::new(7, 300),
        2,
    );
    drive_s3d_like(&mut d, 150);
    let stats_mid = d.agreement_stats();
    assert!(stats_mid.interval > 2, "interval adapted: {stats_mid:?}");
    // Continue: no further waits once adapted.
    drive_s3d_like(&mut d, 150);
    let stats_end = d.agreement_stats();
    assert_eq!(stats_mid.waits, stats_end.waits, "steady state reached: {stats_end:?}");
    d.check_lockstep().expect("lock-step maintained");
}

#[test]
fn capped_two_node_deployment_evicts_in_lockstep() {
    // The bounded-memory lifecycle must be §5.1-safe: with every store
    // capped and a phase-shifting stream forcing evictions, a capped
    // 2-node deployment under skewed mining delays stays in lock-step
    // and evicts identically on both nodes.
    let config = small_config().with_max_candidates(8).with_max_trie_nodes(512);
    let mut d = DistributedAutoTracer::new(
        RuntimeConfig::multi_node(2, 4).with_max_templates(4),
        config,
        DelayModel::new(2025, 120),
        8,
    );
    let a = d.create_region(1);
    let b = d.create_region(1);
    for phase in 0..4u32 {
        for _ in 0..250 {
            for k in 0..4 {
                d.execute_task(
                    TaskDesc::new(TaskKindId(phase * 100 + k))
                        .reads(a)
                        .writes(b)
                        .gpu_time(Micros(50.0)),
                )
                .unwrap();
            }
            d.mark_iteration();
        }
    }
    d.flush().unwrap();
    d.check_lockstep().expect("capped nodes stay in lock-step");
    let r0 = d.node_replayer_stats(0);
    let r1 = d.node_replayer_stats(1);
    assert_eq!(r0, r1, "eviction bookkeeping identical across nodes");
    assert!(r0.evicted_candidates > 0, "phase shifts forced evictions: {r0:?}");
    assert!(r0.candidates <= 8, "candidate cap held: {r0:?}");
    let s = d.node_runtime(0).stats();
    assert!(s.trace_replays > 0, "tracing still effective under caps: {s}");
    assert_eq!(d.node_runtime(1).stats(), s);
}

#[test]
fn drained_deployment_stays_checkable_and_matches_full() {
    // Under `LogRetention::Drain` no node stores any ops, yet lock-step
    // must stay verifiable (via the order-sensitive stream digest) and
    // the finished report must be bit-identical to a full-retention run.
    use tasksim::exec::LogRetention;
    use tasksim::issuer::TaskIssuer as _;
    let run = |retention: LogRetention| {
        let mut d = DistributedAutoTracer::new(
            RuntimeConfig::multi_node(2, 4).with_log_retention(retention),
            small_config(),
            DelayModel::new(2024, 100),
            16,
        );
        drive_s3d_like(&mut d, 150);
        d.check_lockstep().expect("lock-step verifiable under any retention");
        let resident = d.log_stats();
        (Box::new(d).finish().expect("finish"), resident)
    };
    let (full, full_resident) = run(LogRetention::Full);
    let (drained, drain_resident) = run(LogRetention::Drain);
    assert_eq!(full.report, drained.report, "retention never changes the distributed report");
    assert_eq!(full.stats, drained.stats);
    assert!(drained.log.is_none());
    assert_eq!(full_resident.pushed, drain_resident.pushed, "same stream counted both ways");
    assert_eq!(
        full_resident.retained as u64, full_resident.pushed,
        "full retention keeps every op"
    );
}

#[test]
fn digest_catches_divergence_when_ops_are_drained() {
    // Two *independent* drained runs fed different streams must carry
    // different digests — the property check_lockstep's drained-mode
    // comparison rests on.
    use tasksim::exec::LogRetention;
    use tasksim::issuer::TaskIssuer as _;
    let run = |kinds: u32| {
        let mut d = DistributedAutoTracer::new(
            RuntimeConfig::multi_node(1, 4).with_log_retention(LogRetention::Drain),
            small_config(),
            DelayModel::new(0, 0),
            16,
        );
        let a = d.create_region(1);
        let b = d.create_region(1);
        for k in 0..kinds {
            d.execute_task(TaskDesc::new(TaskKindId(k % 7)).reads(a).writes(b)).unwrap();
        }
        d.flush().unwrap();
        d.node_runtime(0).log().digest()
    };
    assert_ne!(run(40), run(41), "streams of different shape digest differently");
    assert_eq!(run(40), run(40), "digests are deterministic");
}

#[test]
fn distributed_matches_single_node_decisions_when_mining_instant() {
    // With zero mining delay and the same ingestion interval the
    // distributed deployment's node 0 must behave exactly like a
    // single-node deployment.
    let mk = |nodes: u32| {
        let mut d = DistributedAutoTracer::new(
            RuntimeConfig::multi_node(nodes, 4),
            small_config(),
            DelayModel::new(0, 0),
            16,
        );
        drive_s3d_like(&mut d, 100);
        (d.node_runtime(0).stats().trace_replays, d.node_runtime(0).stats().tasks_replayed)
    };
    // Note: analysis costs differ with node count but *decisions* do not.
    assert_eq!(mk(1), mk(4));
}

//! Multi-tenant serving: N interleaved tenants over one shared mining
//! pool are bit-identical to the same tenants run solo.
//!
//! The `TraceService` promises isolation-under-sharing: tenants share
//! mining *threads*, never results or ordering, so a tenant's run
//! through a crowded service must equal — op digest, simulation report,
//! runtime counters — the same stream through an otherwise-empty
//! service. Asynchronous-mining tenants achieve this with gated ingest
//! (`Config::with_gated_ingest`) plus a quiesce schedule derived from
//! the stream (here: every iteration): completed analyses wait at the
//! gate and land at the first issue after each quiesce, making
//! ingestion a pure function of the stream rather than of pool timing.
//!
//! Alongside determinism, this file is the serve smoke required by the
//! acceptance criteria: byte budgets demonstrably enforced (peak trie
//! bytes within the apportioned share; template store held to its share
//! by eviction) and admission control demonstrably exercised (`Busy`
//! observed under a tiny queue depth), with the metrics snapshot
//! rendering throughout.

use apophenia::{Config, DelayModel, Tracing};
use apophenia_serve::{ServeConfig, ServeError, StreamId, TraceService};
use proptest::prelude::*;
use tasksim::cost::Micros;
use tasksim::exec::SimReport;
use tasksim::ids::{RegionId, TaskKindId, TraceId};
use tasksim::stats::RuntimeStats;
use tasksim::task::TaskDesc;

const SLOTS: usize = 8;
const ITERS: usize = 120;

fn small_auto() -> Config {
    Config::standard().with_min_trace_length(2).with_batch_size(256).with_multi_scale_factor(16)
}

/// The eight tenants cover every front-end, with async-mining tenants
/// (the ones that actually use the shared pool) in the majority.
fn mode(id: u64) -> Tracing {
    match id % 5 {
        0 | 3 => Tracing::Auto(small_auto().with_async_mining().with_gated_ingest()),
        1 => Tracing::Auto(small_auto()),
        2 => Tracing::Untraced,
        4 if id == 4 => Tracing::Manual,
        _ => Tracing::Distributed {
            config: small_auto(),
            delay: DelayModel::new(2024 + id, 25),
            initial_interval: 8,
        },
    }
}

fn serve_config() -> ServeConfig {
    ServeConfig::default()
        .with_tenant_slots(SLOTS)
        .with_mining_threads(3)
        .with_max_trie_bytes(SLOTS * 256 * 1024)
        .with_max_template_bytes(SLOTS * 512 * 1024)
}

/// Registers tenant `id` and creates its two regions.
fn enroll(svc: &mut TraceService, id: u64) -> (RegionId, RegionId) {
    svc.register(StreamId(id), mode(id)).unwrap();
    let a = svc.create_region(StreamId(id), 1).unwrap();
    let b = svc.create_region(StreamId(id), 1).unwrap();
    (a, b)
}

/// One iteration of tenant `id`'s program: a per-tenant loop body
/// (distinct kinds, tenant-dependent length), manual brackets when the
/// front-end wants them, and the deterministic quiesce that pins
/// asynchronous ingestion to the stream.
fn step(svc: &mut TraceService, id: u64, (a, b): (RegionId, RegionId)) {
    let len = 2 + (id as usize % 3) * 2;
    let body: Vec<TaskDesc> = (0..len as u32)
        .map(|k| {
            let (src, dst) = if k % 2 == 0 { (a, b) } else { (b, a) };
            TaskDesc::new(TaskKindId(id as u32 * 16 + k))
                .reads(src)
                .writes(dst)
                .gpu_time(Micros(50.0 + id as f64))
        })
        .collect();
    let manual = mode(id).is_manual();
    if manual {
        svc.issuer_mut(StreamId(id)).unwrap().begin_trace(TraceId(0)).unwrap();
    }
    svc.submit(StreamId(id), body).unwrap();
    if manual {
        svc.issuer_mut(StreamId(id)).unwrap().end_trace(TraceId(0)).unwrap();
    }
    svc.mark_iteration(StreamId(id)).unwrap();
    svc.quiesce(StreamId(id)).unwrap();
}

/// Drains tenant `id` and returns everything determinism is judged on.
fn harvest(svc: &mut TraceService, id: u64) -> (u64, SimReport, RuntimeStats) {
    svc.quiesce(StreamId(id)).unwrap();
    svc.flush(StreamId(id)).unwrap();
    let digest = svc.issuer_mut(StreamId(id)).unwrap().op_digest();
    let artifacts = svc.finish(StreamId(id)).unwrap();
    (digest, artifacts.report, artifacts.stats)
}

/// Tenant `id`'s stream through an otherwise-empty service with the
/// *same* host configuration (shares are per-slot, so solo and crowded
/// tenants get identical budgets).
fn solo(id: u64, iters: usize) -> (u64, SimReport, RuntimeStats) {
    let mut svc = TraceService::new(serve_config());
    let regions = enroll(&mut svc, id);
    for _ in 0..iters {
        step(&mut svc, id, regions);
    }
    harvest(&mut svc, id)
}

#[test]
fn eight_interleaved_tenants_match_solo_runs() {
    let mut svc = TraceService::new(serve_config());
    let regions: Vec<(RegionId, RegionId)> =
        (0..SLOTS as u64).map(|id| enroll(&mut svc, id)).collect();
    assert!(
        svc.pool().handles() > 1,
        "async tenants hold handles on the one shared pool: {:?}",
        svc.pool()
    );
    for _ in 0..ITERS {
        for id in 0..SLOTS as u64 {
            step(&mut svc, id, regions[id as usize]);
        }
    }
    // The fleet snapshot renders mid-flight, with every tenant healthy.
    let text = svc.render_metrics();
    assert!(text.starts_with(&format!("fleet tenants={SLOTS}/{SLOTS}")), "{text}");
    assert!(!text.contains("DEGRADED"), "{text}");

    // Byte budgets: every tenant stayed within its apportioned share.
    let trie_share = serve_config().trie_share().unwrap();
    for m in svc.all_tenant_metrics() {
        assert!(
            m.peak_trie_bytes <= trie_share,
            "{}: peak trie bytes {} exceed the {trie_share}-byte share",
            m.stream,
            m.peak_trie_bytes
        );
    }

    for id in 0..SLOTS as u64 {
        let crowded = harvest(&mut svc, id);
        let alone = solo(id, ITERS);
        assert_eq!(crowded.0, alone.0, "tenant {id} ({}): op digest", mode(id).label());
        assert_eq!(crowded.1, alone.1, "tenant {id} ({}): report", mode(id).label());
        assert_eq!(crowded.2, alone.2, "tenant {id} ({}): stats", mode(id).label());
    }
}

#[test]
fn traced_tenants_actually_replay_over_the_shared_pool() {
    // Sharing must not cost the paper's point: automatically traced
    // tenants replay most of their stream.
    let mut svc = TraceService::new(serve_config());
    let traced: Vec<u64> =
        (0..SLOTS as u64).filter(|id| matches!(mode(*id), Tracing::Auto(_))).collect();
    assert!(traced.len() >= 4, "the tenant mix keeps auto in the majority");
    let regions: Vec<_> = traced.iter().map(|&id| enroll(&mut svc, id)).collect();
    for _ in 0..ITERS {
        for (i, &id) in traced.iter().enumerate() {
            step(&mut svc, id, regions[i]);
        }
    }
    for &id in &traced {
        let (_, _, stats) = harvest(&mut svc, id);
        assert!(
            stats.tasks_replayed > stats.tasks_total / 4,
            "tenant {id}: substantially replayed, got {stats}"
        );
    }
}

#[test]
fn tiny_queue_depth_draws_busy_pushback() {
    let mut svc =
        TraceService::new(ServeConfig::default().with_tenant_slots(2).with_max_buffered_ops(0));
    svc.register(StreamId(0), Tracing::Auto(small_auto())).unwrap();
    let a = svc.create_region(StreamId(0), 1).unwrap();
    let b = svc.create_region(StreamId(0), 1).unwrap();
    let mut busy = 0u64;
    for _ in 0..200 {
        let body = vec![
            TaskDesc::new(TaskKindId(0)).reads(a).writes(b),
            TaskDesc::new(TaskKindId(1)).reads(b).writes(a),
        ];
        match svc.submit(StreamId(0), body) {
            Ok(()) => svc.mark_iteration(StreamId(0)).unwrap(),
            Err(ServeError::Busy { stream, buffered, limit }) => {
                assert_eq!((stream, limit), (StreamId(0), 0));
                assert!(buffered > 0);
                busy += 1;
                svc.flush(StreamId(0)).unwrap();
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert!(busy > 0, "a replaying tenant at depth 0 must be pushed back");
    assert_eq!(svc.tenant_metrics(StreamId(0)).unwrap().busy_rejections, busy);
    assert!(svc.render_metrics().contains(&format!("busy_rejections={busy}")));
}

#[test]
fn template_byte_shares_are_enforced_by_eviction() {
    // Two slots over a 2 × 2048-byte fleet ceiling: a phase-shifting
    // tenant records far more template bytes than its 2048-byte share
    // and must be held to it by eviction.
    let mut svc = TraceService::new(
        ServeConfig::default().with_tenant_slots(2).with_max_template_bytes(2 * 2048),
    );
    svc.register(StreamId(0), Tracing::Auto(small_auto())).unwrap();
    let a = svc.create_region(StreamId(0), 1).unwrap();
    let b = svc.create_region(StreamId(0), 1).unwrap();
    for i in 0..600u32 {
        let phase = i / 75;
        svc.submit(
            StreamId(0),
            vec![
                TaskDesc::new(TaskKindId(2 * phase)).reads(a).writes(b),
                TaskDesc::new(TaskKindId(2 * phase + 1)).reads(b).writes(a),
            ],
        )
        .unwrap();
        svc.mark_iteration(StreamId(0)).unwrap();
    }
    svc.flush(StreamId(0)).unwrap();
    let m = svc.tenant_metrics(StreamId(0)).unwrap();
    assert!(m.stats.templates_evicted > 0, "the byte share forced eviction: {}", m.stats);
    assert!(
        m.stats.template_bytes <= 2048,
        "resident template bytes within the share: {}",
        m.stats.template_bytes
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random interleavings × tracing modes: however tenant steps are
    /// shuffled against each other, each tenant is bit-identical to its
    /// solo run. `picks` chooses which tenant advances next; tenants
    /// that finish early are skipped, and everyone is driven to exactly
    /// `iters` iterations at the end.
    #[test]
    fn random_interleavings_are_bit_identical_to_solo(
        ids in proptest::collection::vec(0u64..10, 3..4),
        picks in proptest::collection::vec(0usize..3, 0..150),
        iters in 20usize..40,
    ) {
        // Distinct stream ids (tenant programs differ by id, so clashes
        // would register duplicates).
        let mut ids = ids;
        for k in 1..ids.len() {
            while ids[..k].contains(&ids[k]) {
                ids[k] = (ids[k] + 1) % 10;
            }
        }
        let mut svc = TraceService::new(serve_config());
        let regions: Vec<_> = ids.iter().map(|&id| enroll(&mut svc, id)).collect();
        let mut done = vec![0usize; ids.len()];
        for pick in picks {
            if done[pick] < iters {
                step(&mut svc, ids[pick], regions[pick]);
                done[pick] += 1;
            }
        }
        for (k, &id) in ids.iter().enumerate() {
            for _ in done[k]..iters {
                step(&mut svc, id, regions[k]);
            }
        }
        for (k, &id) in ids.iter().enumerate() {
            let crowded = harvest(&mut svc, id);
            let alone = solo(id, iters);
            prop_assert_eq!(crowded.0, alone.0, "tenant {} ({}): digest", id, mode(id).label());
            prop_assert_eq!(crowded.1, alone.1, "tenant {} ({}): report", id, mode(id).label());
            prop_assert_eq!(crowded.2, alone.2, "tenant {} ({}): stats", id, mode(id).label());
            let _ = k;
        }
    }
}

//! Baseline-miner integration: the paper's §4.2 argument that tandem
//! repeats and LZ-style dictionaries are insufficient, demonstrated on
//! realistic streams through the full engine.

use apophenia::{Config, RepeatsAlgorithm};
use workloads::driver::{run_workload, AppParams, Mode, ProblemSize};
use workloads::synthetic::NoisyLoop;

fn with_algo(algo: RepeatsAlgorithm) -> Config {
    let mut c = Config::standard()
        .with_min_trace_length(8)
        .with_batch_size(1024)
        .with_multi_scale_factor(64);
    c.repeats = algo;
    c
}

fn replayed_fraction(algo: RepeatsAlgorithm, w: &dyn workloads::Workload, p: &AppParams) -> f64 {
    let out = run_workload(w, p, &Mode::Auto(with_algo(algo))).unwrap();
    assert_eq!(out.stats.mismatches, 0);
    out.stats.replayed_fraction()
}

#[test]
fn tandem_fails_on_noisy_loops_where_alg2_succeeds() {
    // NoisyLoop with a unique "statistics" task after *every* iteration —
    // the §4.2 motivating structure: "repeated sub-strings separated by
    // other tokens" contain no tandem repeats at all.
    let w = NoisyLoop { noise_every: 1, ..NoisyLoop::default() };
    let p = AppParams { nodes: 1, gpus_per_node: 1, size: ProblemSize::Small, iters: 250 };
    let quick = replayed_fraction(RepeatsAlgorithm::QuickMatching, &w, &p);
    let tandem = replayed_fraction(RepeatsAlgorithm::TandemRepeats, &w, &p);
    assert!(quick > 0.6, "Algorithm 2 traces the noisy loop: {quick}");
    assert!(
        tandem < quick * 0.5,
        "tandem repeats miss most coverage: tandem {tandem} vs quick {quick}"
    );
}

#[test]
fn tandem_works_on_perfectly_contiguous_loops() {
    // Without noise, tandem analysis is adequate — the baselines are not
    // strawmen.
    let w = NoisyLoop { noise_every: 0, ..NoisyLoop::default() };
    let p = AppParams { nodes: 1, gpus_per_node: 1, size: ProblemSize::Small, iters: 250 };
    let tandem = replayed_fraction(RepeatsAlgorithm::TandemRepeats, &w, &p);
    assert!(tandem > 0.5, "tandem handles pure loops: {tandem}");
}

#[test]
fn lzw_ramps_far_slower_than_alg2() {
    // LZW grows candidates one token per repetition, so within the same
    // number of iterations it replays far less.
    let w = NoisyLoop { period: 48, noise_every: 0, gpu_us: 100.0 };
    let p = AppParams { nodes: 1, gpus_per_node: 1, size: ProblemSize::Small, iters: 120 };
    let quick = replayed_fraction(RepeatsAlgorithm::QuickMatching, &w, &p);
    let lzw = replayed_fraction(RepeatsAlgorithm::Lzw, &w, &p);
    assert!(
        lzw < quick,
        "LZW must trail Algorithm 2 in early coverage: lzw {lzw} vs quick {quick}"
    );
}

#[test]
fn tandem_survives_sparse_interruptions() {
    // Conversely, when interruptions are sparse (S3D's hand-off every 10
    // iterations), long contiguous runs DO exist and tandem mining remains
    // usable — our baselines are faithful, not strawmen. Algorithm 2's
    // advantage on such streams is robustness, not raw coverage.
    let p = AppParams::perlmutter(4, ProblemSize::Small, 150);
    let tandem = {
        let mut c = Config::standard().with_batch_size(2000).with_multi_scale_factor(200);
        c.repeats = RepeatsAlgorithm::TandemRepeats;
        let out = run_workload(&workloads::S3d, &p, &Mode::Auto(c)).unwrap();
        out.stats.replayed_fraction()
    };
    assert!(tandem > 0.5, "tandem handles sparse interruptions: {tandem}");
}

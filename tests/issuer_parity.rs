//! Front-end parity: one workload, every `Session` configuration, one
//! `dyn TaskIssuer` code path.
//!
//! The `TaskIssuer` unification promises three things this file proves:
//!
//! * **Order preservation across front-ends** — untraced, manual, auto,
//!   and distributed runs of the same program forward the application's
//!   tasks in exactly the same order (identical task-record hash
//!   streams), no matter how differently they bracket, buffer, or replay
//!   them — and bind every iteration mark to the same issued-task count.
//! * **Batch/single equivalence** — `issue_batch` is semantically
//!   identical to task-at-a-time `execute_task`: the operation logs are
//!   bit-for-bit equal (same records, same analysis kinds, same edges,
//!   same gates), not merely the same hash sequence.
//! * **Streaming/batch equivalence** — `LogRetention::Drain` (ops fed
//!   incrementally through `SimPipeline` and dropped) produces a
//!   `SimReport` bit-identical to `LogRetention::Full` (ops accumulated,
//!   then `simulate(&OpLog)` in one batch pass), for every front-end and
//!   across randomized program shapes (proptest below).

use apophenia::{Config, DelayModel, Session, Tracing};
use tasksim::cost::Micros;
use tasksim::exec::{simulate, LogOp, LogRetention, OpLog, SimReport};
use tasksim::ids::{TaskKindId, TraceId};
use tasksim::issuer::{RunArtifacts, TaskIssuer};
use tasksim::task::{TaskDesc, TaskHash};

const ITERS: usize = 200;

fn small_auto() -> Config {
    Config::standard().with_min_trace_length(4).with_batch_size(512).with_multi_scale_factor(32)
}

fn all_tracings() -> Vec<Tracing> {
    vec![
        Tracing::Untraced,
        Tracing::Manual,
        Tracing::Auto(small_auto()),
        Tracing::Distributed {
            config: small_auto(),
            delay: DelayModel::new(2024, 25),
            initial_interval: 8,
        },
    ]
}

/// The two automatically traced front-ends, either on the optimized hot
/// paths (default) or on the frozen per-task reference pipeline
/// (`Config::reference_pipeline`) the hot paths are pinned against.
fn auto_tracings(reference: bool) -> Vec<Tracing> {
    let cfg = if reference { small_auto().with_reference_pipeline() } else { small_auto() };
    vec![
        Tracing::Auto(cfg.clone()),
        Tracing::Distributed { config: cfg, delay: DelayModel::new(2024, 25), initial_interval: 8 },
    ]
}

/// An S3D-shaped loop (fixed 8-task body, a partition-projected task
/// rotating with period 4, a unique "statistics" task every 5 iterations)
/// issued through any front-end. Returns the hashes in application order.
///
/// The manual variant brackets exactly the fixed body — the rotating and
/// unique tasks stay outside the trace, as a hand annotator would do.
fn drive(issuer: &mut dyn TaskIssuer, manual: bool, batched: bool) -> Vec<TaskHash> {
    let mut expected = Vec::new();
    let a = issuer.create_region(1);
    let b = issuer.create_region(1);
    let parts = issuer.partition(a, 4).unwrap();
    for i in 0..ITERS {
        let mut body = Vec::with_capacity(8);
        for k in 0..8u32 {
            let (src, dst) = if k % 2 == 0 { (a, b) } else { (b, a) };
            body.push(
                TaskDesc::new(TaskKindId(k)).reads(src).read_writes(dst).gpu_time(Micros(100.0)),
            );
        }
        expected.extend(body.iter().map(TaskDesc::semantic_hash));
        if manual {
            issuer.begin_trace(TraceId(0)).unwrap();
        }
        if batched {
            issuer.issue_batch(body).unwrap();
        } else {
            for t in body {
                issuer.execute_task(t).unwrap();
            }
        }
        if manual {
            issuer.end_trace(TraceId(0)).unwrap();
        }
        let rotate =
            TaskDesc::new(TaskKindId(50)).reads(parts[i % 4]).writes(b).gpu_time(Micros(60.0));
        expected.push(rotate.semantic_hash());
        issuer.execute_task(rotate).unwrap();
        if i % 5 == 4 {
            let unique = TaskDesc::new(TaskKindId(1000 + i as u32)).reads(b).gpu_time(Micros(40.0));
            expected.push(unique.semantic_hash());
            issuer.execute_task(unique).unwrap();
        }
        issuer.mark_iteration();
    }
    issuer.flush().unwrap();
    expected
}

fn build(tracing: Tracing, retention: LogRetention) -> Box<dyn TaskIssuer> {
    Session::builder().nodes(2).gpus_per_node(2).tracing(tracing).log_retention(retention).build()
}

fn run(tracing: Tracing, batched: bool) -> (Vec<TaskHash>, OpLog) {
    let manual = tracing.is_manual();
    let mut issuer = build(tracing, LogRetention::Full);
    let expected = drive(issuer.as_mut(), manual, batched);
    let artifacts = issuer.finish().unwrap();
    (expected, artifacts.log.expect("full retention"))
}

/// The iteration-mark binding of a log: each mark's issued-task count.
fn mark_counts(log: &OpLog) -> Vec<u64> {
    log.ops()
        .iter()
        .filter_map(|op| match op {
            LogOp::IterationMark(k) => Some(*k),
            LogOp::Task(_) => None,
        })
        .collect()
}

#[test]
fn every_front_end_preserves_application_order() {
    let mut streams: Vec<(&'static str, Vec<TaskHash>, Vec<u64>)> = Vec::new();
    for tracing in all_tracings() {
        let label = tracing.label();
        let (expected, log) = run(tracing, false);
        let got: Vec<TaskHash> = log.task_records().map(|r| r.hash).collect();
        assert_eq!(got, expected, "{label}: stream differs from issue order");
        streams.push((label, got, mark_counts(&log)));
    }
    // All four front-ends saw the identical program, so all four logs hold
    // the identical hash stream — and bind every iteration mark to the
    // same issued-task count (buffering layers may *position* marks
    // differently in the log, but the binding is what the simulator
    // resolves, and it must agree).
    let (first_label, first, first_marks) = &streams[0];
    for (label, stream, marks) in &streams[1..] {
        assert_eq!(stream, first, "{label} diverges from {first_label}");
        assert_eq!(marks, first_marks, "{label} binds marks differently than {first_label}");
    }
}

#[test]
fn issue_batch_is_bit_identical_to_single_issue() {
    for tracing in all_tracings() {
        let label = tracing.label();
        let (_, single) = run(tracing.clone(), false);
        let (_, batched) = run(tracing, true);
        assert_eq!(
            single.ops(),
            batched.ops(),
            "{label}: batched issuance changed the operation log"
        );
    }
}

fn run_artifacts(tracing: Tracing, batched: bool, retention: LogRetention) -> RunArtifacts {
    let manual = tracing.is_manual();
    let mut issuer = build(tracing, retention);
    drive(issuer.as_mut(), manual, batched);
    issuer.finish().unwrap()
}

#[test]
fn fast_paths_match_the_frozen_reference_pipeline() {
    // The recognize/replay hot paths (untraceable short-circuit,
    // mid-replay memo, batched forwarding, deferred pipeline pump) must
    // be invisible: against the frozen per-task reference pipeline, the
    // operation log is bit-for-bit identical and every counter agrees —
    // per-task and batched, stored (Full) and streaming (Drain).
    for (fast, reference) in auto_tracings(false).into_iter().zip(auto_tracings(true)) {
        let label = fast.label();
        let reference = run_artifacts(reference, false, LogRetention::Full);
        for batched in [false, true] {
            let got = run_artifacts(fast.clone(), batched, LogRetention::Full);
            assert_eq!(
                reference.log().ops(),
                got.log().ops(),
                "{label} batched={batched}: op log diverged from the reference pipeline"
            );
            assert_eq!(reference.stats, got.stats, "{label} batched={batched}");
            assert_eq!(reference.report, got.report, "{label} batched={batched}");
            let drained = run_artifacts(fast.clone(), batched, LogRetention::Drain);
            assert_eq!(reference.report, drained.report, "{label} batched={batched} drained");
            assert_eq!(reference.stats, drained.stats, "{label} batched={batched} drained");
        }
    }
}

#[test]
fn auto_front_ends_actually_traced() {
    // Guard against the parity above passing vacuously (nothing traced).
    for tracing in [
        Tracing::Auto(small_auto()),
        Tracing::Distributed {
            config: small_auto(),
            delay: DelayModel::new(2024, 25),
            initial_interval: 8,
        },
    ] {
        let label = tracing.label();
        let manual = tracing.is_manual();
        let mut issuer = Session::builder().nodes(2).gpus_per_node(2).tracing(tracing).build();
        drive(issuer.as_mut(), manual, true);
        let stats = issuer.stats();
        assert!(stats.tasks_replayed > 0, "{label}: {stats}");
        assert_eq!(stats.mismatches, 0, "{label}: {stats}");
    }
}

#[test]
fn manual_front_end_replays_the_bracketed_body() {
    let mut issuer = Session::builder().tracing(Tracing::Manual).build();
    drive(issuer.as_mut(), true, false);
    let stats = issuer.stats();
    assert_eq!(stats.trace_replays, (ITERS - 1) as u64, "{stats}");
    assert_eq!(stats.mismatches, 0);
}

#[test]
fn drain_is_bit_identical_to_full_for_every_front_end() {
    for tracing in all_tracings() {
        let label = tracing.label();
        let manual = tracing.is_manual();
        let mut full = build(tracing.clone(), LogRetention::Full);
        drive(full.as_mut(), manual, false);
        let full = full.finish().unwrap();
        let mut drained = build(tracing, LogRetention::Drain);
        drive(drained.as_mut(), manual, false);
        let resident = drained.log_stats();
        let drained = drained.finish().unwrap();
        // The streaming report equals both the full-retention report and
        // an explicit batch pass over the materialized log.
        assert_eq!(full.report, drained.report, "{label}: drain diverged from full");
        assert_eq!(
            drained.report,
            simulate(full.log()),
            "{label}: pipeline diverged from simulate(&OpLog)"
        );
        assert_eq!(full.stats, drained.stats, "{label}");
        assert!(drained.log.is_none(), "{label}");
        // Every op was counted even though none were stored. (Residency
        // stays O(window + trace length) — proven in the engine tests and
        // the `streaming_soak` bench, where streams dwarf the window; this
        // test's stream is shorter than the artifact's 30000-op window.)
        assert_eq!(resident.pushed, full.log().stats().pushed, "{label}");
    }
}

#[test]
fn late_flushed_tasks_keep_their_iteration_mark() {
    // Regression: an iteration mark logged while the auto tracer still
    // buffers tasks of its iteration lands in the log *before* those
    // tasks (flush forwards them afterwards). The mark must still bind to
    // the issued-task count — in both batch (Full) and streaming (Drain)
    // modes — so the iteration's timing includes its own tasks.
    let run = |retention: LogRetention| {
        let mut issuer = build(Tracing::Auto(small_auto()), retention);
        let a = issuer.create_region(1);
        let b = issuer.create_region(1);
        let body = |issuer: &mut dyn TaskIssuer, upto: u32| {
            for k in 0..upto {
                let (src, dst) = if k % 2 == 0 { (a, b) } else { (b, a) };
                issuer
                    .execute_task(
                        TaskDesc::new(TaskKindId(k))
                            .reads(src)
                            .read_writes(dst)
                            .gpu_time(Micros(80.0)),
                    )
                    .unwrap();
            }
        };
        for _ in 0..60 {
            body(issuer.as_mut(), 4);
            issuer.mark_iteration();
        }
        // A final *partial* body: the matcher holds these tasks in its
        // pending buffer (a longer match may still complete), so the mark
        // below is logged ahead of them and flush() pushes them after it.
        body(issuer.as_mut(), 2);
        issuer.mark_iteration();
        issuer.flush().unwrap();
        issuer.finish().unwrap()
    };
    let full = run(LogRetention::Full);
    let drained = run(LogRetention::Drain);
    assert_eq!(full.report, drained.report, "batch and streaming marker accounting agree");

    let log = full.log();
    let ops = log.ops();
    let last_mark_pos =
        ops.iter().rposition(|op| matches!(op, LogOp::IterationMark(_))).expect("marks logged");
    assert!(
        last_mark_pos < ops.len() - 1 && matches!(ops.last(), Some(LogOp::Task(_))),
        "scenario really buffered tasks past the final mark"
    );
    let LogOp::IterationMark(k) = ops[last_mark_pos] else { unreachable!() };
    assert_eq!(k, full.stats.tasks_total, "the mark binds to the issued-task count");

    // Marker semantics locked: moving the mark to the log's end (after
    // the tasks it was buffered past) changes nothing — marks resolve by
    // task count, not log position.
    let mut reordered = OpLog::new(*log.config());
    for (i, op) in ops.iter().enumerate() {
        if i != last_mark_pos {
            reordered.push(op.clone());
        }
    }
    reordered.push(ops[last_mark_pos].clone());
    assert_eq!(simulate(&reordered).iteration_finish, full.report.iteration_finish);
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Issues a randomized program shape: `spec` selects, per step,
    /// between a repeated loop body (traceable), a rotating task, a
    /// unique task, and an iteration mark. Manual mode brackets the loop
    /// body only.
    fn drive_random(issuer: &mut dyn TaskIssuer, spec: &[(u8, u8)], manual: bool) {
        let a = issuer.create_region(1);
        let b = issuer.create_region(1);
        for (i, &(step, gpu)) in spec.iter().enumerate() {
            match step % 4 {
                0 | 1 => {
                    // The repeated body (two variants by parity keep a
                    // couple of motifs alive at once).
                    let variant = u32::from(step % 2);
                    if manual {
                        issuer.begin_trace(TraceId(variant)).unwrap();
                    }
                    for k in 0..4u32 {
                        let (src, dst) = if k % 2 == 0 { (a, b) } else { (b, a) };
                        issuer
                            .execute_task(
                                TaskDesc::new(TaskKindId(10 * variant + k))
                                    .reads(src)
                                    .read_writes(dst)
                                    .gpu_time(Micros(f64::from(gpu) + 10.0)),
                            )
                            .unwrap();
                    }
                    if manual {
                        issuer.end_trace(TraceId(variant)).unwrap();
                    }
                }
                2 => {
                    issuer
                        .execute_task(
                            TaskDesc::new(TaskKindId(2000 + i as u32))
                                .reads(a)
                                .writes(b)
                                .gpu_time(Micros(35.0)),
                        )
                        .unwrap();
                }
                _ => issuer.mark_iteration(),
            }
        }
        issuer.flush().unwrap();
    }

    fn report_of(
        tracing: Tracing,
        retention: LogRetention,
        spec: &[(u8, u8)],
    ) -> (SimReport, Option<OpLog>) {
        let manual = tracing.is_manual();
        let mut issuer = build(tracing, retention);
        drive_random(issuer.as_mut(), spec, manual);
        let artifacts = issuer.finish().unwrap();
        (artifacts.report, artifacts.log)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The streaming (Drain) and batch (Full → `simulate(&OpLog)`)
        /// paths produce bit-identical `SimReport`s across random program
        /// shapes and all four issuer front-ends. Manual mode only
        /// brackets deterministic bodies, so every front-end accepts
        /// every generated stream.
        #[test]
        fn drain_equals_full_across_front_ends(
            spec in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..120),
        ) {
            for tracing in all_tracings() {
                let label = tracing.label();
                let (full_report, full_log) =
                    report_of(tracing.clone(), LogRetention::Full, &spec);
                let (drain_report, drain_log) =
                    report_of(tracing, LogRetention::Drain, &spec);
                let full_log = full_log.expect("full retention keeps the log");
                prop_assert!(drain_log.is_none(), "{}: drain kept a log", label);
                prop_assert_eq!(
                    &full_report,
                    &drain_report,
                    "{}: drain diverged from full", label
                );
                // The wrapper really is the same machine: a batch pass
                // over the stored ops reproduces both.
                prop_assert_eq!(
                    &simulate(&full_log),
                    &drain_report,
                    "{}: simulate(&OpLog) diverged from the pipeline", label
                );
            }
        }

        /// The optimized hot paths reproduce the frozen reference
        /// pipeline bit-for-bit across random program shapes: same
        /// operation log, same report, for both auto front-ends.
        #[test]
        fn fast_paths_equal_reference_on_random_streams(
            spec in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..120),
        ) {
            for (fast, reference) in
                auto_tracings(false).into_iter().zip(auto_tracings(true))
            {
                let label = fast.label();
                let (ref_report, ref_log) =
                    report_of(reference, LogRetention::Full, &spec);
                let (fast_report, fast_log) =
                    report_of(fast, LogRetention::Full, &spec);
                prop_assert_eq!(
                    ref_log.as_ref().expect("full retention").ops(),
                    fast_log.as_ref().expect("full retention").ops(),
                    "{}: op log diverged from the reference pipeline", label
                );
                prop_assert_eq!(&ref_report, &fast_report, "{}", label);
            }
        }
    }
}

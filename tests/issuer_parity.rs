//! Front-end parity: one workload, every `Session` configuration, one
//! `dyn TaskIssuer` code path.
//!
//! The `TaskIssuer` unification promises two things this file proves:
//!
//! * **Order preservation across front-ends** — untraced, manual, auto,
//!   and distributed runs of the same program forward the application's
//!   tasks in exactly the same order (identical task-record hash
//!   streams), no matter how differently they bracket, buffer, or replay
//!   them.
//! * **Batch/single equivalence** — `issue_batch` is semantically
//!   identical to task-at-a-time `execute_task`: the operation logs are
//!   bit-for-bit equal (same records, same analysis kinds, same edges,
//!   same gates), not merely the same hash sequence.

use apophenia::{Config, DelayModel, Session, Tracing};
use tasksim::cost::Micros;
use tasksim::exec::OpLog;
use tasksim::ids::{TaskKindId, TraceId};
use tasksim::issuer::TaskIssuer;
use tasksim::task::{TaskDesc, TaskHash};

const ITERS: usize = 200;

fn small_auto() -> Config {
    Config::standard().with_min_trace_length(4).with_batch_size(512).with_multi_scale_factor(32)
}

fn all_tracings() -> Vec<Tracing> {
    vec![
        Tracing::Untraced,
        Tracing::Manual,
        Tracing::Auto(small_auto()),
        Tracing::Distributed {
            config: small_auto(),
            delay: DelayModel::new(2024, 25),
            initial_interval: 8,
        },
    ]
}

/// An S3D-shaped loop (fixed 8-task body, a partition-projected task
/// rotating with period 4, a unique "statistics" task every 5 iterations)
/// issued through any front-end. Returns the hashes in application order.
///
/// The manual variant brackets exactly the fixed body — the rotating and
/// unique tasks stay outside the trace, as a hand annotator would do.
fn drive(issuer: &mut dyn TaskIssuer, manual: bool, batched: bool) -> Vec<TaskHash> {
    let mut expected = Vec::new();
    let a = issuer.create_region(1);
    let b = issuer.create_region(1);
    let parts = issuer.partition(a, 4).unwrap();
    for i in 0..ITERS {
        let mut body = Vec::with_capacity(8);
        for k in 0..8u32 {
            let (src, dst) = if k % 2 == 0 { (a, b) } else { (b, a) };
            body.push(
                TaskDesc::new(TaskKindId(k)).reads(src).read_writes(dst).gpu_time(Micros(100.0)),
            );
        }
        expected.extend(body.iter().map(TaskDesc::semantic_hash));
        if manual {
            issuer.begin_trace(TraceId(0)).unwrap();
        }
        if batched {
            issuer.issue_batch(body).unwrap();
        } else {
            for t in body {
                issuer.execute_task(t).unwrap();
            }
        }
        if manual {
            issuer.end_trace(TraceId(0)).unwrap();
        }
        let rotate =
            TaskDesc::new(TaskKindId(50)).reads(parts[i % 4]).writes(b).gpu_time(Micros(60.0));
        expected.push(rotate.semantic_hash());
        issuer.execute_task(rotate).unwrap();
        if i % 5 == 4 {
            let unique = TaskDesc::new(TaskKindId(1000 + i as u32)).reads(b).gpu_time(Micros(40.0));
            expected.push(unique.semantic_hash());
            issuer.execute_task(unique).unwrap();
        }
        issuer.mark_iteration();
    }
    issuer.flush().unwrap();
    expected
}

fn run(tracing: Tracing, batched: bool) -> (Vec<TaskHash>, OpLog) {
    let manual = tracing.is_manual();
    let mut issuer = Session::builder().nodes(2).gpus_per_node(2).tracing(tracing).build();
    let expected = drive(issuer.as_mut(), manual, batched);
    (expected, issuer.finish().unwrap())
}

#[test]
fn every_front_end_preserves_application_order() {
    let mut streams: Vec<(&'static str, Vec<TaskHash>)> = Vec::new();
    for tracing in all_tracings() {
        let label = tracing.label();
        let (expected, log) = run(tracing, false);
        let got: Vec<TaskHash> = log.task_records().map(|r| r.hash).collect();
        assert_eq!(got, expected, "{label}: stream differs from issue order");
        streams.push((label, got));
    }
    // All four front-ends saw the identical program, so all four logs hold
    // the identical hash stream.
    let (first_label, first) = &streams[0];
    for (label, stream) in &streams[1..] {
        assert_eq!(stream, first, "{label} diverges from {first_label}");
    }
}

#[test]
fn issue_batch_is_bit_identical_to_single_issue() {
    for tracing in all_tracings() {
        let label = tracing.label();
        let (_, single) = run(tracing.clone(), false);
        let (_, batched) = run(tracing, true);
        assert_eq!(
            single.ops(),
            batched.ops(),
            "{label}: batched issuance changed the operation log"
        );
    }
}

#[test]
fn auto_front_ends_actually_traced() {
    // Guard against the parity above passing vacuously (nothing traced).
    for tracing in [
        Tracing::Auto(small_auto()),
        Tracing::Distributed {
            config: small_auto(),
            delay: DelayModel::new(2024, 25),
            initial_interval: 8,
        },
    ] {
        let label = tracing.label();
        let manual = tracing.is_manual();
        let mut issuer = Session::builder().nodes(2).gpus_per_node(2).tracing(tracing).build();
        drive(issuer.as_mut(), manual, true);
        let stats = issuer.stats();
        assert!(stats.tasks_replayed > 0, "{label}: {stats}");
        assert_eq!(stats.mismatches, 0, "{label}: {stats}");
    }
}

#[test]
fn manual_front_end_replays_the_bracketed_body() {
    let mut issuer = Session::builder().tracing(Tracing::Manual).build();
    drive(issuer.as_mut(), true, false);
    let stats = issuer.stats();
    assert_eq!(stats.trace_replays, (ITERS - 1) as u64, "{stats}");
    assert_eq!(stats.mismatches, 0);
}

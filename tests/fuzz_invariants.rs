//! Randomized invariant tests ("fuzzing" with proptest): arbitrary
//! programs must never break the runtime's or Apophenia's invariants.

use apophenia::{AutoTracer, Config};
use proptest::prelude::*;
use tasksim::cost::Micros;
use tasksim::ids::{RegionId, TaskKindId, TraceId};
use tasksim::issuer::TaskIssuer;
use tasksim::runtime::{Runtime, RuntimeConfig};
use tasksim::task::TaskDesc;
use tasksim::trace::MismatchPolicy;

/// One step of a random program.
#[derive(Debug, Clone)]
enum Step {
    Task { kind: u8, reads: u8, writes: u8 },
    Begin(u8),
    End(u8),
    Mark,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        6 => (any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(kind, reads, writes)| Step::Task { kind: kind % 12, reads, writes }),
        1 => (0u8..4).prop_map(Step::Begin),
        1 => (0u8..4).prop_map(Step::End),
        1 => Just(Step::Mark),
    ]
}

fn build_task(regions: &[RegionId], kind: u8, reads: u8, writes: u8) -> TaskDesc {
    let r = regions[reads as usize % regions.len()];
    let w = regions[writes as usize % regions.len()];
    TaskDesc::new(TaskKindId(u32::from(kind))).reads(r).writes(w).gpu_time(Micros(50.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under the Fallback mismatch policy, NO random program (including
    /// ill-formed manual annotations) can panic the runtime or corrupt
    /// its statistics; Strict-policy errors are surfaced as Results.
    #[test]
    fn random_programs_never_panic_runtime(steps in proptest::collection::vec(step_strategy(), 0..300)) {
        let mut cfg = RuntimeConfig::single_node(2);
        cfg.mismatch_policy = MismatchPolicy::Fallback;
        let mut rt = Runtime::new(cfg);
        let regions: Vec<RegionId> = (0..4).map(|_| rt.create_region(1)).collect();
        for step in &steps {
            // Bracketing errors are legal outcomes; panics are not.
            match step {
                Step::Task { kind, reads, writes } => {
                    let _ = rt.execute_task(build_task(&regions, *kind, *reads, *writes));
                }
                Step::Begin(id) => {
                    let _ = rt.begin_trace(TraceId(u32::from(*id)));
                }
                Step::End(id) => {
                    let _ = rt.end_trace(TraceId(u32::from(*id)));
                }
                Step::Mark => rt.mark_iteration(),
            }
        }
        let s = rt.stats();
        prop_assert_eq!(s.tasks_total, s.tasks_fresh + s.tasks_recorded + s.tasks_replayed);
        // The log is always simulatable.
        let report = tasksim::exec::simulate(rt.log());
        prop_assert!(report.total.0 >= 0.0);
        prop_assert!(report.iteration_finish.len() == rt.log().iteration_count());
    }

    /// THE invariant of automatic tracing: no task stream — random,
    /// adversarial, or degenerate — can make Apophenia issue an invalid
    /// trace. Mismatches must be zero under the Strict policy (a mismatch
    /// would be an error return, and an error would fail this test).
    #[test]
    fn apophenia_never_mismatches(
        kinds in proptest::collection::vec(0u8..6, 0..600),
        min_len in 2usize..6,
    ) {
        let config = Config::standard()
            .with_min_trace_length(min_len)
            .with_batch_size(256)
            .with_multi_scale_factor(16);
        let mut auto = AutoTracer::new(RuntimeConfig::single_node(2), config);
        let regions: Vec<RegionId> = (0..3).map(|_| auto.create_region(1)).collect();
        for (i, &k) in kinds.iter().enumerate() {
            auto.execute_task(build_task(&regions, k, k, k.wrapping_add(1)))
                .expect("auto tracing never errors");
            if i % 7 == 6 {
                auto.mark_iteration();
            }
        }
        auto.flush().expect("flush never errors");
        let s = auto.runtime().stats();
        prop_assert_eq!(s.mismatches, 0);
        prop_assert_eq!(s.tasks_total, kinds.len() as u64, "no task lost or duplicated");
    }

    /// The engine preserves stream order for arbitrary inputs.
    #[test]
    fn apophenia_preserves_order(kinds in proptest::collection::vec(0u8..5, 0..400)) {
        let config = Config::standard()
            .with_min_trace_length(3)
            .with_batch_size(128)
            .with_multi_scale_factor(16);
        let mut auto = AutoTracer::new(RuntimeConfig::single_node(1), config);
        let regions: Vec<RegionId> = (0..3).map(|_| auto.create_region(1)).collect();
        let mut expected = Vec::new();
        for &k in &kinds {
            let t = build_task(&regions, k, k, k.wrapping_add(1));
            expected.push(t.semantic_hash());
            auto.execute_task(t).unwrap();
        }
        auto.flush().unwrap();
        let got: Vec<_> = auto.runtime().log().task_records().map(|r| r.hash).collect();
        prop_assert_eq!(got, expected);
    }

    /// Region lifecycle fuzz: create/partition/destroy interleavings never
    /// break the forest's alias relation.
    #[test]
    fn region_lifecycle_fuzz(ops in proptest::collection::vec((0u8..3, any::<u8>()), 1..60)) {
        let mut rt = Runtime::new(RuntimeConfig::single_node(1));
        let mut live: Vec<RegionId> = vec![rt.create_region(1)];
        for (op, arg) in ops {
            match op {
                0 => live.push(rt.create_region(1 + u32::from(arg % 4))),
                1 => {
                    let r = live[arg as usize % live.len()];
                    if let Ok(parts) = rt.partition(r, 2 + u32::from(arg % 3)) {
                        live.extend(parts);
                    }
                }
                _ => {
                    if live.len() > 1 {
                        let r = live.remove(arg as usize % live.len());
                        let _ = rt.destroy_region(r);
                    }
                }
            }
        }
        // Aliasing stays symmetric over whatever survived.
        let forest = rt.forest();
        for &a in &live {
            for &b in &live {
                prop_assert_eq!(forest.may_alias(a, b), forest.may_alias(b, a));
            }
        }
    }
}

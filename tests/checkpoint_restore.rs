//! Restartable runs: checkpoint the full tracing engine mid-stream,
//! restore it in a fresh `Session`, and prove the continuation is
//! **bit-identical** to the uninterrupted run.
//!
//! The contract under test (the determinism that makes §5.1 control
//! replication possible also makes checkpoints exact):
//!
//! * For all four front-ends (untraced / manual / auto / distributed) and
//!   both retention policies (`Full` / `Drain`), a run cut at a task
//!   boundary by `TaskIssuer::checkpoint` and resumed via
//!   `Session::resume_from` produces the same `SimReport` (compared to
//!   the bit) and the same op-stream digest as the run that never
//!   stopped.
//! * Taking a checkpoint must not perturb the run that keeps going.
//! * Corrupt, truncated, retagged, or future-versioned snapshots are
//!   rejected with typed [`SnapshotError`]s, never a panic or a silently
//!   divergent restore.

use apophenia::{Config, DelayModel, Session, SnapshotError, Tracing};
use tasksim::cost::Micros;
use tasksim::exec::LogRetention;
use tasksim::ids::{RegionId, TaskKindId, TraceId};
use tasksim::issuer::TaskIssuer;
use tasksim::runtime::RuntimeError;
use tasksim::snapshot as snap;
use tasksim::task::TaskDesc;

const ITERS: usize = 120;

fn small_auto() -> Config {
    Config::standard().with_min_trace_length(4).with_batch_size(512).with_multi_scale_factor(32)
}

fn all_tracings() -> Vec<Tracing> {
    vec![
        Tracing::Untraced,
        Tracing::Manual,
        Tracing::Auto(small_auto()),
        Tracing::Distributed {
            config: small_auto(),
            delay: DelayModel::new(2024, 25),
            initial_interval: 8,
        },
    ]
}

fn build(tracing: Tracing, retention: LogRetention) -> Box<dyn TaskIssuer> {
    Session::builder().nodes(2).gpus_per_node(2).tracing(tracing).log_retention(retention).build()
}

/// Issues iterations `[from, to)` of the parity workload (fixed 8-task
/// body, rotating partition task, periodic unique task, iteration mark).
/// Regions are created only on the very first call — a resumed session
/// already holds them in its restored forest under the same ids.
fn drive_range(issuer: &mut dyn TaskIssuer, manual: bool, from: usize, to: usize) {
    let (a, b, parts) = if from == 0 {
        let a = issuer.create_region(1);
        let b = issuer.create_region(1);
        (a, b, issuer.partition(a, 4).unwrap())
    } else {
        (RegionId(0), RegionId(1), vec![RegionId(2), RegionId(3), RegionId(4), RegionId(5)])
    };
    for i in from..to {
        if manual {
            issuer.begin_trace(TraceId(0)).unwrap();
        }
        for k in 0..8u32 {
            let (src, dst) = if k % 2 == 0 { (a, b) } else { (b, a) };
            issuer
                .execute_task(
                    TaskDesc::new(TaskKindId(k))
                        .reads(src)
                        .read_writes(dst)
                        .gpu_time(Micros(100.0)),
                )
                .unwrap();
        }
        if manual {
            issuer.end_trace(TraceId(0)).unwrap();
        }
        issuer
            .execute_task(
                TaskDesc::new(TaskKindId(50)).reads(parts[i % 4]).writes(b).gpu_time(Micros(60.0)),
            )
            .unwrap();
        if i % 5 == 4 {
            issuer
                .execute_task(
                    TaskDesc::new(TaskKindId(1000 + i as u32)).reads(b).gpu_time(Micros(40.0)),
                )
                .unwrap();
        }
        issuer.mark_iteration();
    }
}

/// Writes a checkpoint mid-way through an auto run (used by the
/// corruption tests).
fn checkpoint_bytes() -> Vec<u8> {
    let mut issuer = build(Tracing::Auto(small_auto()), LogRetention::Full);
    drive_range(issuer.as_mut(), false, 0, 40);
    let mut bytes = Vec::new();
    issuer.checkpoint(&mut bytes).unwrap();
    bytes
}

#[test]
fn restored_run_is_bit_identical_for_every_front_end_and_retention() {
    for tracing in all_tracings() {
        for retention in [LogRetention::Full, LogRetention::Drain] {
            let label = format!("{}/{retention:?}", tracing.label());
            let manual = tracing.is_manual();

            // Reference: the run that never stops.
            let mut straight = build(tracing.clone(), retention);
            drive_range(straight.as_mut(), manual, 0, ITERS);
            straight.flush().unwrap();
            let straight_digest = straight.op_digest();
            let straight = straight.finish().unwrap();

            // Interrupted: checkpoint at iteration 47, "crash", resume in
            // a fresh Session, finish the program.
            let mut victim = build(tracing.clone(), retention);
            drive_range(victim.as_mut(), manual, 0, 47);
            let mut bytes = Vec::new();
            let meta = victim.checkpoint(&mut bytes).unwrap();
            assert_eq!(meta.op_digest, victim.op_digest(), "{label}: meta digest");
            assert_eq!(meta.ops_pushed, victim.log_stats().pushed, "{label}: meta ops");
            drop(victim);

            let mut resumed = Session::resume_from(&mut bytes.as_slice()).unwrap();
            assert_eq!(resumed.op_digest(), meta.op_digest, "{label}: restored digest");
            assert_eq!(resumed.log_stats().pushed, meta.ops_pushed, "{label}");
            drive_range(resumed.as_mut(), manual, 47, ITERS);
            resumed.flush().unwrap();
            assert_eq!(resumed.op_digest(), straight_digest, "{label}: op digest diverged");
            let resumed = resumed.finish().unwrap();

            assert_eq!(straight.stats, resumed.stats, "{label}: runtime counters diverged");
            assert_eq!(straight.report, resumed.report, "{label}: SimReport diverged");
            assert_eq!(
                straight.report.total.0.to_bits(),
                resumed.report.total.0.to_bits(),
                "{label}: clocks diverged at the bit level"
            );
            match retention {
                LogRetention::Full => {
                    let (a, b) = (straight.log(), resumed.log());
                    assert_eq!(a.ops(), b.ops(), "{label}: raw logs diverged");
                    assert_eq!(a.digest(), b.digest(), "{label}");
                }
                LogRetention::Drain => {
                    assert!(resumed.log.is_none(), "{label}: drained run kept a log")
                }
            }
        }
    }
}

#[test]
fn checkpointing_never_perturbs_the_running_session() {
    // The checkpointed issuer keeps going; its artifacts must equal a run
    // that never checkpointed (the snapshot is a pure observation at a
    // task boundary — the finder quiesce is invisible under the
    // deterministic sync-mining configuration).
    for tracing in all_tracings() {
        let label = tracing.label();
        let manual = tracing.is_manual();
        let mut plain = build(tracing.clone(), LogRetention::Full);
        drive_range(plain.as_mut(), manual, 0, ITERS);
        plain.flush().unwrap();
        let plain = plain.finish().unwrap();

        let mut observed = build(tracing.clone(), LogRetention::Full);
        drive_range(observed.as_mut(), manual, 0, 31);
        let mut sink = Vec::new();
        observed.checkpoint(&mut sink).unwrap();
        drive_range(observed.as_mut(), manual, 31, ITERS);
        observed.flush().unwrap();
        let observed = observed.finish().unwrap();

        assert_eq!(plain.report, observed.report, "{label}: checkpoint perturbed the run");
        assert_eq!(plain.stats, observed.stats, "{label}");
        assert_eq!(plain.log().digest(), observed.log().digest(), "{label}");
    }
}

#[test]
fn immediate_recheckpoint_is_byte_identical() {
    // Restoring and immediately checkpointing again reproduces the same
    // envelope byte for byte: the snapshot is a canonical encoding of the
    // state (hash-map contents are serialized in sorted order).
    let bytes = checkpoint_bytes();
    let mut resumed = Session::resume_from(&mut bytes.as_slice()).unwrap();
    let mut again = Vec::new();
    resumed.checkpoint(&mut again).unwrap();
    assert_eq!(bytes, again, "canonical encoding: restore ∘ checkpoint = identity");
}

#[test]
fn meta_describes_the_cut() {
    let mut issuer = build(
        Tracing::Distributed {
            config: small_auto(),
            delay: DelayModel::new(7, 12),
            initial_interval: 8,
        },
        LogRetention::Drain,
    );
    drive_range(issuer.as_mut(), false, 0, 20);
    let mut bytes = Vec::new();
    let meta = issuer.checkpoint(&mut bytes).unwrap();
    assert_eq!(meta.format_version, snap::FORMAT_VERSION);
    assert_eq!(meta.front_end, snap::FRONT_END_DISTRIBUTED);
    assert_eq!(meta.front_end_label(), "distributed");
    // 20 iterations × (8 body + 1 rotating) + 4 unique tasks.
    assert_eq!(meta.tasks_issued, 20 * 9 + 4, "the agreed issued-task barrier");
    assert!(meta.payload_bytes > 0);
    assert!(bytes.len() as u64 > meta.payload_bytes, "envelope adds its header");
}

#[test]
fn corrupt_and_truncated_snapshots_are_rejected_with_typed_errors() {
    let bytes = checkpoint_bytes();

    let expect_snapshot_err = |bytes: &[u8]| -> SnapshotError {
        match Session::resume_from(&mut &*bytes) {
            Err(RuntimeError::Snapshot(e)) => e,
            Err(other) => panic!("expected a typed snapshot error, got {other}"),
            Ok(_) => panic!("corrupt snapshot restored successfully"),
        }
    };

    // Truncation anywhere: header, payload, digest.
    for cut in [0, 3, 8, 10, bytes.len() / 2, bytes.len() - 1] {
        assert_eq!(expect_snapshot_err(&bytes[..cut]), SnapshotError::Truncated, "cut {cut}");
    }

    // A flipped payload byte trips the digest.
    let mut corrupt = bytes.clone();
    let mid = bytes.len() / 2;
    corrupt[mid] ^= 0x01;
    assert_eq!(expect_snapshot_err(&corrupt), SnapshotError::DigestMismatch);

    // Retagging the front-end cannot redirect the payload: the tag is
    // digested too.
    let mut retagged = bytes.clone();
    retagged[8] = snap::FRONT_END_RUNTIME;
    assert_eq!(expect_snapshot_err(&retagged), SnapshotError::DigestMismatch);

    // Bad magic and future versions are typed.
    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'Z';
    assert_eq!(expect_snapshot_err(&bad_magic), SnapshotError::BadMagic);
    let mut future = bytes.clone();
    future[4] = 0x7f;
    assert!(matches!(expect_snapshot_err(&future), SnapshotError::UnsupportedVersion(_)));

    // A well-formed envelope with an unknown front-end tag.
    let mut unknown = Vec::new();
    snap::write_envelope(9, b"whatever", &mut unknown).unwrap();
    assert_eq!(expect_snapshot_err(&unknown), SnapshotError::UnknownFrontEnd(9));

    // A well-formed envelope whose payload is garbage decodes to a
    // Corrupt/Truncated error, not a panic.
    let mut garbage = Vec::new();
    snap::write_envelope(snap::FRONT_END_AUTO, &[0xffu8; 64], &mut garbage).unwrap();
    assert!(matches!(
        expect_snapshot_err(&garbage),
        SnapshotError::Corrupt(_) | SnapshotError::Truncated
    ));

    // And the pristine bytes still restore.
    assert!(Session::resume_from(&mut bytes.as_slice()).is_ok());
}

#[test]
fn buffered_ops_surface_through_every_front_end() {
    // The unified backpressure stat: pass-through front-ends report
    // zeros; the auto front-ends report replayer buffering, and drained
    // runs report pipeline deferrals.
    let mut plain = build(Tracing::Untraced, LogRetention::Full);
    drive_range(plain.as_mut(), false, 0, 10);
    assert_eq!(plain.buffered_ops().peak_total(), 0, "nothing buffers untraced");

    for tracing in [
        Tracing::Auto(small_auto()),
        Tracing::Distributed {
            config: small_auto(),
            delay: DelayModel::new(2024, 25),
            initial_interval: 8,
        },
    ] {
        let label = tracing.label();
        let mut issuer = build(tracing, LogRetention::Drain);
        drive_range(issuer.as_mut(), false, 0, ITERS);
        let b = issuer.buffered_ops();
        assert!(b.peak_replayer_pending > 0, "{label}: replayer buffered nothing: {b:?}");
        assert!(b.peak_pipeline_deferred > 0, "{label}: pipeline deferred nothing: {b:?}");
        issuer.flush().unwrap();
        assert_eq!(issuer.buffered_ops().replayer_pending, 0, "{label}: flush drains");
    }
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Issues steps `[from, to)` of a randomized program (same shape as
    /// the issuer-parity generator: repeated bodies, unique tasks,
    /// iteration marks).
    fn drive_spec(
        issuer: &mut dyn TaskIssuer,
        spec: &[(u8, u8)],
        manual: bool,
        from: usize,
        to: usize,
    ) {
        let (a, b) = if from == 0 {
            (issuer.create_region(1), issuer.create_region(1))
        } else {
            (RegionId(0), RegionId(1))
        };
        for (i, &(step, gpu)) in spec[from..to].iter().enumerate() {
            let i = from + i;
            match step % 4 {
                0 | 1 => {
                    let variant = u32::from(step % 2);
                    if manual {
                        issuer.begin_trace(TraceId(variant)).unwrap();
                    }
                    for k in 0..4u32 {
                        let (src, dst) = if k % 2 == 0 { (a, b) } else { (b, a) };
                        issuer
                            .execute_task(
                                TaskDesc::new(TaskKindId(10 * variant + k))
                                    .reads(src)
                                    .read_writes(dst)
                                    .gpu_time(Micros(f64::from(gpu) + 10.0)),
                            )
                            .unwrap();
                    }
                    if manual {
                        issuer.end_trace(TraceId(variant)).unwrap();
                    }
                }
                2 => {
                    issuer
                        .execute_task(
                            TaskDesc::new(TaskKindId(2000 + i as u32))
                                .reads(a)
                                .writes(b)
                                .gpu_time(Micros(35.0)),
                        )
                        .unwrap();
                }
                _ => issuer.mark_iteration(),
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The acceptance criterion, randomized: checkpoint at a random
        /// step of a random program and the restored run's report and op
        /// digest equal the uninterrupted run's, for all four front-ends
        /// under both retention policies.
        #[test]
        fn restore_equals_uninterrupted_on_random_programs(
            spec in proptest::collection::vec((any::<u8>(), any::<u8>()), 8..80),
            cut_sel in any::<u16>(),
        ) {
            let cut = 1 + (cut_sel as usize) % (spec.len() - 1);
            for tracing in all_tracings() {
                for retention in [LogRetention::Full, LogRetention::Drain] {
                    let label = format!("{}/{retention:?}", tracing.label());
                    let manual = tracing.is_manual();

                    let mut straight = build(tracing.clone(), retention);
                    drive_spec(straight.as_mut(), &spec, manual, 0, spec.len());
                    straight.flush().unwrap();
                    let straight_digest = straight.op_digest();
                    let straight = straight.finish().unwrap();

                    let mut victim = build(tracing.clone(), retention);
                    drive_spec(victim.as_mut(), &spec, manual, 0, cut);
                    let mut bytes = Vec::new();
                    victim.checkpoint(&mut bytes).unwrap();
                    drop(victim);
                    let mut resumed = Session::resume_from(&mut bytes.as_slice()).unwrap();
                    drive_spec(resumed.as_mut(), &spec, manual, cut, spec.len());
                    resumed.flush().unwrap();
                    prop_assert_eq!(
                        resumed.op_digest(), straight_digest,
                        "{}: digest diverged at cut {}", label, cut
                    );
                    let resumed = resumed.finish().unwrap();
                    prop_assert_eq!(&straight.stats, &resumed.stats, "{}", label);
                    prop_assert_eq!(&straight.report, &resumed.report, "{}", label);
                }
            }
        }
    }
}

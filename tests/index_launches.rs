//! Index-launch integration: a partitioned stencil application traced
//! automatically, exercising projection requirements through the whole
//! stack (dependence analysis over partitions, tracing, simulation).

use apophenia::{AutoTracer, Config};
use tasksim::cost::Micros;
use tasksim::exec::simulate;
use tasksim::ids::{RegionId, TaskKindId};
use tasksim::index::IndexLaunch;
use tasksim::privilege::ReductionOp;
use tasksim::runtime::{Runtime, RuntimeConfig, RuntimeError};

/// A 1-D stencil: grid partitioned per GPU; per iteration a halo-exchange
/// launch, a compute launch projected over the partition, and every few
/// iterations a residual reduction into a scalar region.
struct Stencil {
    parts_cur: Vec<RegionId>,
    parts_next: Vec<RegionId>,
    residual: RegionId,
    gpus: u32,
}

impl Stencil {
    fn setup<D: StencilDriver>(d: &mut D, gpus: u32) -> Result<Self, RuntimeError> {
        let grid_a = d.create_region(1);
        let grid_b = d.create_region(1);
        let parts_cur = d.partition(grid_a, gpus)?;
        let parts_next = d.partition(grid_b, gpus)?;
        let residual = d.create_region(1);
        Ok(Self { parts_cur, parts_next, residual, gpus })
    }

    fn iteration<D: StencilDriver>(&mut self, d: &mut D, check: bool) -> Result<(), RuntimeError> {
        // Halo exchange: read+write the current partition.
        d.execute(
            IndexLaunch::new(TaskKindId(3000))
                .projects_read_writes(&self.parts_cur)
                .gpu_time_per_point(Micros(60.0), self.gpus)
                .into_task(),
        )?;
        // Compute: read cur, write next.
        d.execute(
            IndexLaunch::new(TaskKindId(3001))
                .projects_reads(&self.parts_cur)
                .projects_writes(&self.parts_next)
                .gpu_time_per_point(Micros(400.0), self.gpus)
                .into_task(),
        )?;
        if check {
            d.execute(
                IndexLaunch::new(TaskKindId(3002))
                    .projects_reads(&self.parts_next)
                    .reduces_broadcast(self.residual, ReductionOp(0))
                    .gpu_time_per_point(Micros(50.0), self.gpus)
                    .into_task(),
            )?;
        }
        std::mem::swap(&mut self.parts_cur, &mut self.parts_next);
        Ok(())
    }
}

/// Minimal driver abstraction so the same stencil runs on both backends.
trait StencilDriver {
    fn create_region(&mut self, fields: u32) -> RegionId;
    fn partition(&mut self, r: RegionId, parts: u32) -> Result<Vec<RegionId>, RuntimeError>;
    fn execute(&mut self, t: tasksim::task::TaskDesc) -> Result<(), RuntimeError>;
    fn mark(&mut self);
}

impl StencilDriver for Runtime {
    fn create_region(&mut self, fields: u32) -> RegionId {
        Runtime::create_region(self, fields)
    }
    fn partition(&mut self, r: RegionId, parts: u32) -> Result<Vec<RegionId>, RuntimeError> {
        Runtime::partition(self, r, parts)
    }
    fn execute(&mut self, t: tasksim::task::TaskDesc) -> Result<(), RuntimeError> {
        Runtime::execute_task(self, t).map(|_| ())
    }
    fn mark(&mut self) {
        self.mark_iteration();
    }
}

impl StencilDriver for AutoTracer {
    fn create_region(&mut self, fields: u32) -> RegionId {
        AutoTracer::create_region(self, fields)
    }
    fn partition(&mut self, r: RegionId, parts: u32) -> Result<Vec<RegionId>, RuntimeError> {
        AutoTracer::partition(self, r, parts)
    }
    fn execute(&mut self, t: tasksim::task::TaskDesc) -> Result<(), RuntimeError> {
        AutoTracer::execute_task(self, t)
    }
    fn mark(&mut self) {
        self.mark_iteration();
    }
}

fn run_stencil<D: StencilDriver>(d: &mut D, gpus: u32, iters: usize) {
    let mut st = Stencil::setup(d, gpus).unwrap();
    for i in 0..iters {
        st.iteration(d, i % 5 == 4).unwrap();
        d.mark();
    }
}

#[test]
fn stencil_dependences_are_correct() {
    let mut rt = Runtime::new(RuntimeConfig::multi_node(2, 4));
    run_stencil(&mut rt, 8, 10);
    // Every compute launch depends on the halo before it (read-write vs
    // read on the same partition).
    let recs: Vec<_> = rt.log().task_records().collect();
    // ops: halo(0), compute(1), [check], halo, compute, ...
    assert!(recs[1].preds.contains(&tasksim::ids::OpId(0)), "compute after halo");
    assert!(!recs[0].preds.contains(&tasksim::ids::OpId(1)));
}

#[test]
fn stencil_traces_automatically() {
    let config = Config::standard()
        .with_min_trace_length(4)
        .with_batch_size(512)
        .with_multi_scale_factor(32);
    let mut auto = AutoTracer::new(RuntimeConfig::multi_node(2, 4), config);
    run_stencil(&mut auto, 8, 1500);
    auto.flush().unwrap();
    let s = auto.runtime().stats();
    assert_eq!(s.mismatches, 0);
    assert!(
        s.replayed_fraction() > 0.5,
        "partitioned stencil reaches replay steady state: {s}"
    );
    // The ping-pong buffer swap means the repeating unit is TWO iterations
    // (like Figure 1): consecutive iterations hash differently.
    let hashes: Vec<_> = auto.runtime().log().task_records().map(|r| r.hash).collect();
    assert_ne!(hashes[0], hashes[2], "cur/next swap changes the launch hash");
}

#[test]
fn stencil_speedup_from_tracing() {
    let run = |auto: bool| {
        if auto {
            let config = Config::standard()
                .with_min_trace_length(4)
                .with_batch_size(512)
                .with_multi_scale_factor(32);
            let mut a = AutoTracer::new(RuntimeConfig::multi_node(2, 4), config);
            run_stencil(&mut a, 8, 1500);
            a.flush().unwrap();
            simulate(a.runtime().log()).steady_throughput(1200)
        } else {
            let mut rt = Runtime::new(RuntimeConfig::multi_node(2, 4));
            run_stencil(&mut rt, 8, 1500);
            simulate(rt.log()).steady_throughput(1200)
        }
    };
    let auto = run(true);
    let untraced = run(false);
    assert!(auto > untraced * 1.5, "auto {auto} vs untraced {untraced}");
}

//! Index-launch integration: a partitioned stencil application traced
//! automatically, exercising projection requirements through the whole
//! stack (dependence analysis over partitions, tracing, simulation).
//!
//! The stencil issues through `dyn TaskIssuer`, so the untraced and
//! automatically traced runs share every line of application code; only
//! the `Tracing` value handed to `Session` differs.

use apophenia::{Config, Session, Tracing};
use tasksim::cost::Micros;
use tasksim::exec::OpLog;
use tasksim::ids::{RegionId, TaskKindId};
use tasksim::index::IndexLaunch;
use tasksim::issuer::TaskIssuer;
use tasksim::privilege::ReductionOp;
use tasksim::runtime::RuntimeError;
use tasksim::stats::RuntimeStats;

/// A 1-D stencil: grid partitioned per GPU; per iteration a halo-exchange
/// launch, a compute launch projected over the partition, and every few
/// iterations a residual reduction into a scalar region.
struct Stencil {
    parts_cur: Vec<RegionId>,
    parts_next: Vec<RegionId>,
    residual: RegionId,
    gpus: u32,
}

impl Stencil {
    fn setup(d: &mut dyn TaskIssuer, gpus: u32) -> Result<Self, RuntimeError> {
        let grid_a = d.create_region(1);
        let grid_b = d.create_region(1);
        let parts_cur = d.partition(grid_a, gpus)?;
        let parts_next = d.partition(grid_b, gpus)?;
        let residual = d.create_region(1);
        Ok(Self { parts_cur, parts_next, residual, gpus })
    }

    fn iteration(&mut self, d: &mut dyn TaskIssuer, check: bool) -> Result<(), RuntimeError> {
        // Halo exchange: read+write the current partition.
        d.execute_task(
            IndexLaunch::new(TaskKindId(3000))
                .projects_read_writes(&self.parts_cur)
                .gpu_time_per_point(Micros(60.0), self.gpus)
                .into_task(),
        )?;
        // Compute: read cur, write next.
        d.execute_task(
            IndexLaunch::new(TaskKindId(3001))
                .projects_reads(&self.parts_cur)
                .projects_writes(&self.parts_next)
                .gpu_time_per_point(Micros(400.0), self.gpus)
                .into_task(),
        )?;
        if check {
            d.execute_task(
                IndexLaunch::new(TaskKindId(3002))
                    .projects_reads(&self.parts_next)
                    .reduces_broadcast(self.residual, ReductionOp(0))
                    .gpu_time_per_point(Micros(50.0), self.gpus)
                    .into_task(),
            )?;
        }
        std::mem::swap(&mut self.parts_cur, &mut self.parts_next);
        Ok(())
    }
}

fn auto_config() -> Config {
    Config::standard().with_min_trace_length(4).with_batch_size(512).with_multi_scale_factor(32)
}

fn run_stencil(
    tracing: Tracing,
    gpus: u32,
    iters: usize,
) -> (RuntimeStats, OpLog, tasksim::exec::SimReport) {
    let mut issuer = Session::builder().nodes(2).gpus_per_node(gpus / 2).tracing(tracing).build();
    let mut st = Stencil::setup(issuer.as_mut(), gpus).unwrap();
    for i in 0..iters {
        st.iteration(issuer.as_mut(), i % 5 == 4).unwrap();
        issuer.mark_iteration();
    }
    issuer.flush().unwrap();
    let artifacts = issuer.finish().unwrap();
    (artifacts.stats, artifacts.log.expect("full retention"), artifacts.report)
}

#[test]
fn stencil_dependences_are_correct() {
    let (_, log, _) = run_stencil(Tracing::Untraced, 8, 10);
    // Every compute launch depends on the halo before it (read-write vs
    // read on the same partition).
    let recs: Vec<_> = log.task_records().collect();
    // ops: halo(0), compute(1), [check], halo, compute, ...
    assert!(recs[1].preds.contains(&tasksim::ids::OpId(0)), "compute after halo");
    assert!(!recs[0].preds.contains(&tasksim::ids::OpId(1)));
}

#[test]
fn stencil_traces_automatically() {
    let (stats, log, _) = run_stencil(Tracing::Auto(auto_config()), 8, 1500);
    assert_eq!(stats.mismatches, 0);
    assert!(
        stats.replayed_fraction() > 0.5,
        "partitioned stencil reaches replay steady state: {stats}"
    );
    // The ping-pong buffer swap means the repeating unit is TWO iterations
    // (like Figure 1): consecutive iterations hash differently.
    let hashes: Vec<_> = log.task_records().map(|r| r.hash).collect();
    assert_ne!(hashes[0], hashes[2], "cur/next swap changes the launch hash");
}

#[test]
fn stencil_speedup_from_tracing() {
    let run = |tracing: Tracing| {
        let (_, _, report) = run_stencil(tracing, 8, 1500);
        report.steady_throughput(1200)
    };
    let auto = run(Tracing::Auto(auto_config()));
    let untraced = run(Tracing::Untraced);
    assert!(auto > untraced * 1.5, "auto {auto} vs untraced {untraced}");
}

//! The paper's headline quantitative claims, as integration tests.
//!
//! §6's two headline ranges:
//! * previously traced programs: Apophenia reaches 0.92x–1.03x of manual;
//! * previously untraced programs: 0.91x–2.82x end-to-end speedups.
//!
//! Absolute throughput depends on the simulator calibration; the claims
//! tested here are the *relative* ones the paper leads with.

use apophenia::Config;
use workloads::driver::{measure_throughput, AppParams, Mode, ProblemSize, Workload};

const ITERS: usize = 400;
const WARMUP: usize = 300;

fn auto() -> Mode {
    Mode::Auto(Config::standard())
}

/// Apophenia within 0.92x–1.03x of manual tracing (allowing a small
/// simulation margin on both sides).
#[test]
fn auto_matches_manual_on_traced_apps() {
    let runs: Vec<(&dyn Workload, AppParams)> = vec![
        (&workloads::S3d, AppParams::perlmutter(16, ProblemSize::Small, ITERS)),
        (&workloads::Htr, AppParams::perlmutter(16, ProblemSize::Small, ITERS)),
    ];
    for (w, p) in runs {
        let a = measure_throughput(w, &p, &auto(), WARMUP).unwrap();
        let m = measure_throughput(w, &p, &Mode::Manual, WARMUP).unwrap();
        let ratio = a / m;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "{}: auto/manual = {ratio:.3} (paper: 0.92–1.03)",
            w.name()
        );
    }
}

/// FlexFlow at strong scale with max_trace_length 200 reaches ~0.97x of
/// manual (paper §6.2).
#[test]
fn flexflow_auto200_matches_manual() {
    let p = AppParams::eos(32, ProblemSize::Small, ITERS);
    let a200 = measure_throughput(
        &workloads::FlexFlow,
        &p,
        &Mode::Auto(Config::standard().with_max_trace_length(200)),
        WARMUP,
    )
    .unwrap();
    let m = measure_throughput(&workloads::FlexFlow, &p, &Mode::Manual, WARMUP).unwrap();
    let ratio = a200 / m;
    assert!((0.9..=1.05).contains(&ratio), "auto-200/manual = {ratio:.3}");
}

/// Untraced programs speed up by up to ~2.8x at scale (TorchSWE's 2.82x
/// is the paper's maximum).
#[test]
fn untraced_apps_speed_up_at_scale() {
    let cases: Vec<(&dyn Workload, AppParams, f64, f64)> = vec![
        // (workload, params, min expected speedup, max plausible)
        (&workloads::Cfd, AppParams::eos(64, ProblemSize::Small, ITERS), 1.2, 3.5),
        (&workloads::TorchSwe, AppParams::eos(64, ProblemSize::Small, ITERS), 2.0, 4.5),
    ];
    for (w, p, lo, hi) in cases {
        let a = measure_throughput(w, &p, &auto(), WARMUP).unwrap();
        let u = measure_throughput(w, &p, &Mode::Untraced, WARMUP).unwrap();
        let speedup = a / u;
        assert!(
            (lo..=hi).contains(&speedup),
            "{}: speedup {speedup:.2} outside [{lo}, {hi}]",
            w.name()
        );
    }
}

/// Tracing must never hurt large problem sizes at small scale by more
/// than the paper's observed floor (0.91x).
#[test]
fn tracing_floor_respected() {
    let cases: Vec<(&dyn Workload, AppParams)> = vec![
        (&workloads::S3d, AppParams::perlmutter(4, ProblemSize::Large, ITERS)),
        (&workloads::Cfd, AppParams::eos(8, ProblemSize::Large, ITERS)),
    ];
    for (w, p) in cases {
        let a = measure_throughput(w, &p, &auto(), WARMUP).unwrap();
        let u = measure_throughput(w, &p, &Mode::Untraced, WARMUP).unwrap();
        assert!(a / u > 0.9, "{}: auto/untraced = {:.3}", w.name(), a / u);
    }
}

/// Figure 8's crossover: the maximum-trace-length cap only matters at
/// strong scale.
#[test]
fn max_trace_length_crossover() {
    let a5000 = Mode::Auto(Config::standard());
    let a200 = Mode::Auto(Config::standard().with_max_trace_length(200));
    // 1 GPU: tie.
    let p1 = AppParams::eos(1, ProblemSize::Small, ITERS);
    let t5000 = measure_throughput(&workloads::FlexFlow, &p1, &a5000, WARMUP).unwrap();
    let t200 = measure_throughput(&workloads::FlexFlow, &p1, &a200, WARMUP).unwrap();
    assert!((t200 / t5000 - 1.0).abs() < 0.1, "tie at 1 GPU: {}", t200 / t5000);
    // 32 GPUs: the cap wins.
    let p32 = AppParams::eos(32, ProblemSize::Small, ITERS);
    let t5000 = measure_throughput(&workloads::FlexFlow, &p32, &a5000, WARMUP).unwrap();
    let t200 = measure_throughput(&workloads::FlexFlow, &p32, &a200, WARMUP).unwrap();
    assert!(t200 > t5000 * 1.1, "cap wins at 32 GPUs: {} vs {}", t200, t5000);
}

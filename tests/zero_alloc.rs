//! Counting-allocator proof of the allocation-free steady states.
//!
//! The recognize/replay hot paths promise O(1) work *and zero heap
//! traffic* per task once warm, in the two states long runs actually sit
//! in:
//!
//! * **untraceable stream** — nothing buffered, nothing matching, every
//!   token rejected by the trie's dense root map and forwarded straight
//!   to the sink;
//! * **mid-replay** — a single cursor walking a memoized candidate chain
//!   while the pending buffer cycles inside its warmed capacity.
//!
//! A counting `#[global_allocator]` wrapper measures heap allocations
//! (alloc / alloc_zeroed / realloc) across thousands of steady-state
//! tasks and asserts the count is exactly zero. Arming is *per-thread*
//! (const-initialized TLS, no destructor, so the allocator may probe it
//! safely): harness threads allocating concurrently cannot pollute the
//! measurement.

use apophenia::{Config, MinedBatch, MinedCandidate, TraceReplayer, TraceSink};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::convert::Infallible;
use std::sync::atomic::{AtomicU64, Ordering};
use tasksim::ids::{TaskKindId, TraceId};
use tasksim::task::{TaskDesc, TaskHash};

/// Forwards to the system allocator, counting allocations made by a
/// thread while that thread is armed.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
}

fn armed() -> bool {
    ARMED.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Counts heap allocations performed by `f` on this thread.
fn allocations_in(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.with(|a| a.set(true));
    f();
    ARMED.with(|a| a.set(false));
    ALLOCS.load(Ordering::SeqCst)
}

/// A sink that discards everything (the replayer's own cost in
/// isolation).
struct NullSink;

impl TraceSink for NullSink {
    type Error = Infallible;

    fn begin_trace(&mut self, _id: TraceId) -> Result<(), Infallible> {
        Ok(())
    }

    fn end_trace(&mut self, _id: TraceId) -> Result<(), Infallible> {
        Ok(())
    }

    fn execute_task(&mut self, _task: TaskDesc) -> Result<(), Infallible> {
        Ok(())
    }
}

/// A bare task: empty region lists, so construction, moves, and drops
/// never touch the heap — every counted allocation is the replayer's.
fn task(kind: u32) -> (TaskDesc, TaskHash) {
    let desc = TaskDesc::new(TaskKindId(kind));
    let hash = desc.semantic_hash();
    (desc, hash)
}

fn motif_batch(kinds: &[u32]) -> MinedBatch {
    MinedBatch {
        job: 0,
        candidates: vec![MinedCandidate {
            content: kinds.iter().map(|&k| task(k).1).collect(),
            occurrences: vec![0],
        }],
        slice_end: 0,
    }
}

#[test]
fn steady_states_are_allocation_free() {
    const MOTIF: [u32; 8] = [0, 1, 2, 3, 4, 5, 6, 7];
    // `standard()` requires 25-token traces; admit the 8-token motif.
    let config = Config::standard().with_min_trace_length(4);
    let mut sink = NullSink;

    // --- Untraceable stream ---------------------------------------------
    let mut replayer = TraceReplayer::new(&config);
    replayer.ingest(&motif_batch(&MOTIF));
    // Warm up: a few untraceable tokens (distinct kinds, so nothing ever
    // matches the candidate) plus the stats call the loop makes.
    for i in 0..64u32 {
        let (desc, hash) = task(1000 + i);
        replayer.on_task(desc, hash, &mut sink).unwrap();
    }
    let allocs = allocations_in(|| {
        for i in 0..4096u32 {
            let (desc, hash) = task(2000 + i);
            replayer.on_task(desc, hash, &mut sink).unwrap();
        }
    });
    assert_eq!(allocs, 0, "untraceable steady state allocated {allocs} times over 4096 tasks");
    assert_eq!(replayer.stats().traces_issued, 0, "stream was really untraceable");

    // --- Mid-replay ------------------------------------------------------
    let mut replayer = TraceReplayer::new(&config);
    replayer.ingest(&motif_batch(&MOTIF));
    // Warm up: stream the motif until the replayer has issued traces a
    // few times (cursor scratch, pending buffer, and replay memo are all
    // at steady-state capacity afterwards).
    while replayer.stats().traces_issued < 3 {
        for &k in &MOTIF {
            let (desc, hash) = task(k);
            replayer.on_task(desc, hash, &mut sink).unwrap();
        }
    }
    let issued_before = replayer.stats().traces_issued;
    let allocs = allocations_in(|| {
        for _ in 0..512 {
            for &k in &MOTIF {
                let (desc, hash) = task(k);
                replayer.on_task(desc, hash, &mut sink).unwrap();
            }
        }
    });
    assert_eq!(allocs, 0, "mid-replay steady state allocated {allocs} times over 4096 tasks");
    assert_eq!(
        replayer.stats().traces_issued - issued_before,
        512,
        "every measured occurrence replayed"
    );
}

//! Bounded-memory trace-lifecycle acceptance.
//!
//! On a 4-phase, 100k-task synthetic stream that switches its repeating
//! motif every phase (the paper's re-mining motivation turned into a
//! soak), the [`apophenia::CapacityConfig`] bounds must keep peak trie
//! node and template counts flat while replay coverage on the *active*
//! phase stays within 10% of the uncapped run — evicting dead candidates
//! must not cost live tracing.

use bench::{
    lifecycle_capped_config, lifecycle_capped_runtime, lifecycle_config, run_lifecycle_soak,
};
use tasksim::runtime::RuntimeConfig;

const PHASES: usize = 4;
const TASKS_PER_PHASE: usize = 25_000;
const MOTIF: usize = 10;

#[test]
fn capped_soak_bounds_memory_without_losing_coverage() {
    let uncapped = run_lifecycle_soak(
        "uncapped",
        lifecycle_config(),
        RuntimeConfig::single_node(1),
        PHASES,
        TASKS_PER_PHASE,
        MOTIF,
    );
    let capped = run_lifecycle_soak(
        "capped",
        lifecycle_capped_config(),
        lifecycle_capped_runtime(),
        PHASES,
        TASKS_PER_PHASE,
        MOTIF,
    );
    assert_eq!(capped.tasks, (PHASES * TASKS_PER_PHASE) as u64);

    // Memory stays bounded: the candidate cap holds exactly, the node
    // footprint stays within the configured bound (plus the root and
    // transient pre-compaction slack), and the template store never
    // exceeds its cap by more than the just-recorded template.
    assert!(capped.peak_candidates <= 24, "candidate cap held: {capped:?}");
    assert!(capped.peak_trie_nodes <= 2 * 1024 + 64, "node footprint bounded: {capped:?}");
    assert!(capped.peak_templates <= 9, "template cap held: {capped:?}");
    assert!(capped.evictions > 0, "dead phases actually evicted: {capped:?}");
    assert!(capped.templates_evicted > 0, "dead templates evicted: {capped:?}");
    // The per-candidate `meta` side table shrinks when trailing
    // tombstoned slots are truncated — it no longer sits at its
    // historical high water forever.
    assert!(
        capped.meta_capacity < capped.peak_meta_capacity,
        "meta side table truncated below its peak: {capped:?}"
    );

    // The uncapped run demonstrates the leak the bounds exist to stop.
    assert!(
        uncapped.peak_trie_nodes > capped.peak_trie_nodes,
        "uncapped run grows past the capped footprint: {} vs {}",
        uncapped.peak_trie_nodes,
        capped.peak_trie_nodes
    );
    assert!(uncapped.peak_candidates > capped.peak_candidates, "{uncapped:?}");

    // Replay coverage on each active phase stays within 10% (absolute)
    // of the uncapped run: eviction retires *dead* candidates only.
    for (phase, (c, u)) in capped.phase_coverage.iter().zip(&uncapped.phase_coverage).enumerate() {
        assert!(
            *c >= u - 0.10,
            "phase {phase}: capped coverage {c:.3} fell more than 10% below uncapped {u:.3}\n\
             capped: {capped:?}\nuncapped: {uncapped:?}"
        );
    }
}

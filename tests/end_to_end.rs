//! End-to-end integration: every workload through the full stack
//! (stream → Apophenia → runtime → machine simulation).

use apophenia::Config;
use tasksim::exec::LogRetention;
use workloads::driver::{run_workload, run_workload_with, AppParams, Mode, ProblemSize, Workload};

fn all_workloads() -> Vec<(&'static dyn Workload, AppParams)> {
    vec![
        (
            &workloads::Jacobi,
            AppParams { nodes: 1, gpus_per_node: 1, size: ProblemSize::Small, iters: 1500 },
        ),
        (&workloads::S3d, AppParams::perlmutter(8, ProblemSize::Small, 120)),
        (&workloads::Htr, AppParams::perlmutter(8, ProblemSize::Small, 200)),
        (&workloads::Cfd, AppParams::eos(8, ProblemSize::Small, 200)),
        (&workloads::TorchSwe, AppParams::eos(8, ProblemSize::Small, 100)),
        (&workloads::FlexFlow, AppParams::eos(8, ProblemSize::Small, 150)),
    ]
}

#[test]
fn every_workload_traces_cleanly_under_apophenia() {
    for (w, p) in all_workloads() {
        let out = run_workload(w, &p, &Mode::Auto(Config::standard())).unwrap();
        assert_eq!(out.stats.mismatches, 0, "{}: {}", w.name(), out.stats);
        assert!(out.stats.tasks_replayed > 0, "{} found no traces: {}", w.name(), out.stats);
        // The run is simulated and iterations are all accounted for.
        assert_eq!(out.log().iteration_count(), p.iters, "{}", w.name());
        assert_eq!(out.report.iteration_finish.len(), p.iters, "{}", w.name());
        assert!(out.report.total > tasksim::cost::Micros::ZERO);
    }
}

#[test]
fn order_preserved_for_every_workload() {
    for (w, p) in all_workloads() {
        let untraced = run_workload(w, &p, &Mode::Untraced).unwrap();
        let auto = run_workload(w, &p, &Mode::Auto(Config::standard())).unwrap();
        let a: Vec<_> = untraced.log().task_records().map(|r| r.hash).collect();
        let b: Vec<_> = auto.log().task_records().map(|r| r.hash).collect();
        assert_eq!(a, b, "{}: Apophenia must not reorder the stream", w.name());
    }
}

#[test]
fn auto_never_slower_than_untraced_by_much() {
    // The paper's floor: 0.91x in the worst configuration. Allow 0.85 for
    // simulation noise on short runs. Both runs drain their logs — the
    // report is all a throughput comparison needs.
    for (w, p) in all_workloads() {
        let auto =
            run_workload_with(w, &p, &Mode::Auto(Config::standard()), LogRetention::Drain).unwrap();
        let untraced = run_workload_with(w, &p, &Mode::Untraced, LogRetention::Drain).unwrap();
        assert!(auto.log.is_none(), "{}: drained runs keep no log", w.name());
        let warmup = p.iters * 3 / 4;
        let ta = auto.report.steady_throughput(warmup);
        let tu = untraced.report.steady_throughput(warmup);
        assert!(ta > tu * 0.85, "{}: auto {ta} vs untraced {tu}", w.name());
    }
}

#[test]
fn streaming_matches_batch_for_every_workload() {
    // The tentpole's acceptance, end to end: Drain and Full retention
    // produce bit-identical reports on every workload under auto tracing.
    for (w, p) in all_workloads() {
        let full = run_workload(w, &p, &Mode::Auto(Config::standard())).unwrap();
        let drained =
            run_workload_with(w, &p, &Mode::Auto(Config::standard()), LogRetention::Drain).unwrap();
        assert_eq!(full.report, drained.report, "{}: retention changed the report", w.name());
        assert_eq!(full.stats, drained.stats, "{}", w.name());
    }
}

#[test]
fn manual_workloads_validate_their_annotations() {
    let runs: Vec<(&dyn Workload, AppParams)> = vec![
        (&workloads::S3d, AppParams::perlmutter(8, ProblemSize::Small, 60)),
        (&workloads::Htr, AppParams::perlmutter(8, ProblemSize::Small, 60)),
        (&workloads::FlexFlow, AppParams::eos(8, ProblemSize::Small, 60)),
    ];
    for (w, p) in runs {
        let out = run_workload(w, &p, &Mode::Manual).unwrap();
        assert_eq!(out.stats.mismatches, 0, "{}", w.name());
        assert_eq!(out.stats.trace_replays, (p.iters - 1) as u64, "{}", w.name());
    }
}

#[test]
fn replay_fraction_grows_over_run() {
    let p = AppParams::perlmutter(4, ProblemSize::Small, 150);
    let out = run_workload(&workloads::S3d, &p, &Mode::Auto(Config::standard())).unwrap();
    let samples = &out.traced_samples;
    assert!(!samples.is_empty());
    let first_quarter: f64 =
        samples[..samples.len() / 4].iter().map(|s| s.1).sum::<f64>() / (samples.len() / 4) as f64;
    let last_quarter: f64 = samples[samples.len() * 3 / 4..].iter().map(|s| s.1).sum::<f64>()
        / (samples.len() - samples.len() * 3 / 4) as f64;
    assert!(
        last_quarter > first_quarter,
        "traced fraction ramps: {first_quarter} → {last_quarter}"
    );
    assert!(last_quarter > 80.0, "steady state: {last_quarter}%");
}

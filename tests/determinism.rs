//! Determinism: identical inputs must produce identical logs, decisions,
//! and simulated timings — the property control replication rests on.

use apophenia::Config;
use tasksim::exec::LogRetention;
use workloads::driver::{run_workload, run_workload_with, AppParams, Mode, ProblemSize, Workload};

fn run_twice(w: &dyn Workload, p: &AppParams, mode: &Mode) {
    let a = run_workload(w, p, mode).unwrap();
    let b = run_workload(w, p, mode).unwrap();
    assert_eq!(a.stats, b.stats, "{} stats deterministic", w.name());
    assert_eq!(a.log().ops().len(), b.log().ops().len());
    for (i, (x, y)) in a.log().ops().iter().zip(b.log().ops().iter()).enumerate() {
        assert_eq!(x, y, "{} op {i} deterministic", w.name());
    }
    assert_eq!(a.log().digest(), b.log().digest(), "{} digest deterministic", w.name());
    let (ra, rb) = (&a.report, &b.report);
    assert_eq!(ra.iteration_finish.len(), rb.iteration_finish.len());
    for (x, y) in ra.iteration_finish.iter().zip(rb.iteration_finish.iter()) {
        assert!((x.0 - y.0).abs() < 1e-9, "simulated timings deterministic");
    }
    // The streaming path is deterministic too — and bit-identical to the
    // batch reports above.
    let c = run_workload_with(w, p, mode, LogRetention::Drain).unwrap();
    assert_eq!(&c.report, ra, "{}: drained report diverges from batch", w.name());
    assert_eq!(c.stats, a.stats);
}

#[test]
fn auto_runs_are_deterministic() {
    let p = AppParams::perlmutter(8, ProblemSize::Small, 120);
    run_twice(&workloads::S3d, &p, &Mode::Auto(Config::standard()));
    let p = AppParams::eos(8, ProblemSize::Small, 120);
    run_twice(&workloads::Cfd, &p, &Mode::Auto(Config::standard()));
}

#[test]
fn manual_and_untraced_runs_are_deterministic() {
    let p = AppParams::perlmutter(8, ProblemSize::Small, 60);
    run_twice(&workloads::S3d, &p, &Mode::Untraced);
    run_twice(&workloads::S3d, &p, &Mode::Manual);
}

#[test]
fn random_workload_with_fixed_seed_is_deterministic() {
    let w = workloads::synthetic::RandomStream::default();
    let p = AppParams { nodes: 1, gpus_per_node: 1, size: ProblemSize::Small, iters: 80 };
    run_twice(&w, &p, &Mode::Auto(Config::standard()));
}

#[test]
fn task_hashes_are_stable_across_runs() {
    // Control replication requires the *hash function itself* to be
    // deterministic across processes — FNV-1a, not DefaultHasher. Pin a
    // few values so an accidental hasher change is caught.
    use tasksim::ids::{RegionId, TaskKindId};
    use tasksim::task::TaskDesc;
    let h = TaskDesc::new(TaskKindId(1)).reads(RegionId(2)).writes(RegionId(3)).semantic_hash();
    assert_eq!(h.0, 0x242e_633e_74ef_9a05, "pinned FNV-1a output changed: {h}");
}
